//===- tv/Refine.cpp - bounded translation validation -------------------------===//

#include "tv/Refine.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "smt/Solve.h"
#include "support/Cancel.h"
#include "support/Format.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>
#include <thread>
#include <unordered_map>

using namespace lv;
using namespace lv::tv;
using namespace lv::vir;
using smt::TermId;
using smt::TermTable;

const char *lv::tv::verdictName(TVVerdict V) {
  switch (V) {
  case TVVerdict::Equivalent: return "Equivalent";
  case TVVerdict::Inequivalent: return "Inequivalent";
  case TVVerdict::Inconclusive: return "Inconclusive";
  case TVVerdict::Unsupported: return "Unsupported";
  }
  return "?";
}

/// `t refines s`: violated when s is defined but t is poison or different.
static TermId refineViolation(TermTable &T, const SymVal &S, const SymVal &V) {
  return T.mkAnd(T.mkNot(S.Poison),
                 T.mkOr(V.Poison, T.mkNe(S.Val, V.Val)));
}

/// Finds the memory for region \p Name in a state ('s param regions).
static const SymMemory *findMem(const SymState &St, const VFunction &F,
                                const std::string &Name) {
  for (size_t I = 0; I < F.Memories.size(); ++I)
    if (F.Memories[I].IsParam && F.Memories[I].Name == Name)
      return &St.Mems[I];
  return nullptr;
}

//===----------------------------------------------------------------------===//
// RefinementSession
//===----------------------------------------------------------------------===//

struct RefinementSession::Impl {
  RefineOptions Opts;
  TermTable T;
  SharedInputs In;
  SymState SS, ST;
  /// Param-region pairs compared cell-by-cell (source side / target side).
  std::vector<std::pair<const SymMemory *, const SymMemory *>> MemPairs;
  /// UB_tgt plus the return-value obligations — common to every query.
  TermId BaseViol = smt::NoTerm;
  smt::IncrementalSolver IS;
  /// Reusable fork target for isolated queries (capacity persists across
  /// queries, so re-forking is allocation-free).
  std::unique_ptr<smt::IncrementalSolver> Fork;
  /// Portfolio sessions: the fast racer's base — a copy of the pristine
  /// sound base running shared-learnt with cone projection and trail
  /// reuse. Sequential queries search it directly (learnt clauses
  /// accumulate across queries, heuristics rewound per query, exactly the
  /// shared_cone_reuse mode); batched cell dispatch forks it instead so
  /// cells stay order-independent. The sound base IS below is never
  /// searched in either case, so fallback forks reproduce plain
  /// fork-per-query verdicts bit-exactly.
  std::unique_ptr<smt::IncrementalSolver> FastIS;
  /// Unused fork slot for the sequential path's solveIsolated call (the
  /// sequential fast racer searches FastIS directly).
  std::unique_ptr<smt::IncrementalSolver> FastForkSeq;
  /// Adaptive fast-arm gate: the largest conflict budget at which the
  /// fast racer has already exhausted itself without deciding. Queries at
  /// that budget or below skip the race and go straight to the sound
  /// fork — the portfolio stops paying double on budget classes where the
  /// fast arm is known to be inconclusive (e.g. spatial splitting, whose
  /// per-cell budget is far below the cunroll budget the fast arm already
  /// failed at). Skipping is sound: the sound fork's verdict is the
  /// parity reference either way. Monotone and deterministic: one probe
  /// per budget class, never reset within a session.
  uint64_t FastFailedBudgetHi = 0;
  /// Verdicts of completed isolated queries, keyed by the violation
  /// TermId (hash-consing makes syntactic equality an id compare) and
  /// guarded by exact budget equality. An identical query against a
  /// pristine fork is deterministic, so replaying the verdict is exact —
  /// common in spatial splitting when several cells compare syntactically
  /// equal and collapse to the same base violation.
  struct MemoEntry {
    smt::SatBudget Budget;
    TVResult Result;
  };
  std::unordered_map<TermId, MemoEntry> QueryMemo;
  /// Verdict fixed at construction (compile/shape failures); every query
  /// returns it unchanged.
  bool HasImmediate = false;
  TVResult Immediate;
  /// T.size() right after construction — the term count a scratch session
  /// would start from. Per-query term accounting is BaseTerms plus the
  /// terms that query itself built, so the MaxTerms memout check stays
  /// order-independent instead of charging each query for every earlier
  /// query's terms.
  size_t BaseTerms = 0;

  Impl(const VFunction &Src, const VFunction &Tgt, const RefineOptions &O)
      : Opts(O), In(T), IS(T) {
    IS.setOptions(Opts.Solver); // forks inherit via copy/assignFrom
    T.reserve(Opts.MaxTerms);
    SS = executeSymbolic(Src, T, In, Opts.SrcExec);
    ST = executeSymbolic(Tgt, T, In, Opts.TgtExec);
    if (!SS.ok() || !ST.ok()) {
      Immediate.V = TVVerdict::Unsupported;
      Immediate.Detail = !SS.ok() ? SS.Error : ST.Error;
      HasImmediate = true;
      return;
    }

    // Assumptions: unroll exhaustion on both sides, size domains, scalar
    // parameter domain, and the alignment divisibility constraints.
    TermId A = T.mkAnd(SS.Assum, ST.Assum);
    for (const SymMemory &M : SS.Mems)
      A = T.mkAnd(A, M.sizeDomain());
    for (const SymMemory &M : ST.Mems)
      A = T.mkAnd(A, M.sizeDomain());
    for (const std::string &Name : In.scalarNames()) {
      TermId P = In.scalar(Name);
      A = T.mkAnd(A, T.mkAnd(T.mkSge(P, T.mkConst(0)),
                             T.mkSle(P, T.mkConstS(Opts.ScalarMax))));
    }
    for (const DivAssumption &D : Opts.Divs) {
      TermId P = In.scalar(D.Param);
      TermId E = T.mkAdd(P, T.mkConstS(D.Offset));
      A = T.mkAnd(A, T.mkAnd(T.mkSge(E, T.mkConst(0)),
                             T.mkEq(T.mkSRem(E, T.mkConstS(D.Mod)),
                                    T.mkConst(0))));
    }

    // Violations shared by every query: target UB and return obligations.
    BaseViol = ST.UB;
    if (Src.ReturnsValue && Tgt.ReturnsValue) {
      TermId RetMismatch =
          T.mkOr(T.mkAnd(SS.RetCond, T.mkNot(ST.RetCond)),
                 T.mkAnd(ST.RetCond, T.mkNot(SS.RetCond)));
      TermId RetDiff =
          T.mkAnd(T.mkAnd(SS.RetCond, ST.RetCond),
                  refineViolation(T, SS.RetVal, ST.RetVal));
      BaseViol = T.mkOr(BaseViol, T.mkOr(RetMismatch, RetDiff));
    } else if (Src.ReturnsValue != Tgt.ReturnsValue) {
      Immediate.V = TVVerdict::Inequivalent;
      Immediate.Detail = "return type mismatch";
      HasImmediate = true;
      return;
    }

    for (size_t I = 0; I < Src.Memories.size(); ++I) {
      if (!Src.Memories[I].IsParam)
        continue;
      const SymMemory *MT = findMem(ST, Tgt, Src.Memories[I].Name);
      if (!MT) {
        Immediate.V = TVVerdict::Inequivalent;
        Immediate.Detail =
            format("target lacks array parameter '%s'",
                   Src.Memories[I].Name.c_str());
        HasImmediate = true;
        return;
      }
      MemPairs.emplace_back(&SS.Mems[I], MT);
    }

    // The common prefix A && !UB_src is asserted once; per-query
    // violations then run under an assumption literal against it.
    IS.assertAlways(T.mkAnd(A, T.mkNot(SS.UB)));
    // Shared-learnt sessions rewind branching heuristics to this point
    // before every query: sharing covers the clause DB (learnt lemmas),
    // not VSIDS/phase warmth — warm heuristics are the main way one
    // query's search distorts the next one's budget-bound verdict.
    if (Opts.SharedLearnt)
      IS.snapshotHeuristics();
    else if (Opts.Portfolio) {
      // Portfolio racing: the fast arm gets its own shared-learnt base
      // (cone projection + trail reuse), copied from the still-pristine
      // sound base so both racers start from the identical encoding.
      FastIS.reset(new smt::IncrementalSolver(IS));
      smt::SatOptions FastOpts;
      FastOpts.ConeProjection = true;
      FastOpts.TrailReuse = true;
      FastIS->setOptions(FastOpts);
      FastIS->snapshotHeuristics();
    }
    BaseTerms = T.size();
  }

  TVResult query(int CellLo, int CellHi, const smt::SatBudget &Budget,
                 bool Isolate);
  TVResult queryBody(int CellLo, int CellHi, const smt::SatBudget &Budget,
                     bool Isolate);
  std::vector<TVResult> queryBatch(const std::vector<int> &Cells,
                                   const smt::SatBudget &Budget, int Workers);

  /// Builds the violation term for cells [CellLo, CellHi) — BaseViol plus
  /// a refinement obligation per non-syntactically-identical cell.
  TermId buildViolation(int CellLo, int CellHi);
  /// Memo probe under exact budget equality; fills \p Out with the zeroed
  /// replay copy on a hit.
  bool memoProbe(TermId Viol, const smt::SatBudget &Budget, TVResult &Out);
  /// Copies solver statistics and renders the verdict/counterexample.
  void finishResult(TVResult &Out, const smt::SmtResult &R);
  /// The solve kernel shared by the sequential and batched paths: plain
  /// fork-per-query, or the portfolio race when the session has a fast
  /// base and \p RaceFast is set. The caller owns the fork buffers so
  /// batch workers stay independent; \p FastDirect selects whether the
  /// fast racer searches FastIS itself (sequential, warm shared-learnt)
  /// or a fork of it (batched, order-independent). \p RaceFast false in a
  /// portfolio session means the adaptive gate skipped the fast arm: the
  /// sound fork decides alone and the result is marked PortfolioArm=2
  /// with zero fast-arm work.
  TVResult solveIsolated(TermId Viol, const smt::SatBudget &Budget,
                         std::unique_ptr<smt::IncrementalSolver> &SoundFork,
                         std::unique_ptr<smt::IncrementalSolver> &FastFork,
                         bool FastDirect, bool RaceFast);
};

/// Registry-counter emission for one completed query result. The counter
/// deltas are exactly the fields StageSatWork::add(TVResult) aggregates —
/// the bench parity gates rely on that equality — including the portfolio
/// win/fallback tallies.
static void emitQueryCounters(const TVResult &Out) {
  static obs::Counter &Queries = obs::counter("tv.queries");
  static obs::Counter &Conflicts = obs::counter("tv.conflicts");
  static obs::Counter &Props = obs::counter("tv.propagations");
  static obs::Counter &Restarts = obs::counter("tv.restarts");
  static obs::Counter &Reused = obs::counter("tv.trail_reused");
  static obs::Counter &FastWins = obs::counter("tv.portfolio_fast_wins");
  static obs::Counter &SoundWins = obs::counter("tv.portfolio_sound_wins");
  static obs::Counter &Fallbacks = obs::counter("tv.portfolio_fallbacks");
  static obs::Histogram &QueryNs = obs::histogram("tv.query_ns");
  Queries.inc();
  Conflicts.inc(Out.Conflicts);
  Props.inc(Out.Propagations);
  Restarts.inc(Out.Restarts);
  Reused.inc(Out.TrailReused);
  if (Out.PortfolioArm == 1) {
    FastWins.inc();
  } else if (Out.PortfolioArm == 2) {
    Fallbacks.inc();
    if (Out.decided())
      SoundWins.inc();
  }
  QueryNs.observe(Out.SolveNanos);
}

static void emitQuerySpanArgs(obs::Span &S, const TVResult &Out, int CellLo,
                              int Cells) {
  S.arg("cell_lo", static_cast<uint64_t>(std::max(CellLo, 0)));
  S.arg("cells", static_cast<uint64_t>(std::max(Cells, 0)));
  S.arg("conflicts", Out.Conflicts);
  S.arg("propagations", Out.Propagations);
  S.arg("restarts", Out.Restarts);
  S.arg("trail_reused", Out.TrailReused);
}

/// Every session query funnels through here (checkFull, checkCell, and
/// the one-shot wrapper alike): one "tv.query" span plus the registry
/// counters. The batched cell path (queryBatch) emits the same span/
/// counter shape per merged cell instead.
TVResult RefinementSession::Impl::query(int CellLo, int CellHi,
                                        const smt::SatBudget &Budget,
                                        bool Isolate) {
  // Per-query deadline checkpoint: a cancelled task stops before the next
  // solve, bounding deadline overshoot to one query's budget.
  support::throwIfCancelled("tv.query");
  obs::Span S("tv", "tv.query");
  TVResult Out = queryBody(CellLo, CellHi, Budget, Isolate);
  emitQuerySpanArgs(S, Out, CellLo, CellHi - CellLo);
  emitQueryCounters(Out);
  return Out;
}

/// \p Isolate runs the query in a throwaway fork of the session's base
/// solver. The base stays pristine (the common encoding is asserted but
/// never searched), so every isolated query starts from exactly the state
/// a scratch solver would have built — same verdicts as one-shot solving,
/// minus the per-query symbolic execution and common-encoding blast.
TermId RefinementSession::Impl::buildViolation(int CellLo, int CellHi) {
  TermId Viol = BaseViol;
  for (const auto &Pair : MemPairs) {
    const SymMemory &MS = *Pair.first;
    const SymMemory &MT = *Pair.second;
    int Lo = std::max(CellLo, 0);
    int Hi = std::min(CellHi, MS.capacity());
    for (int J = Lo; J < Hi; ++J) {
      TermId Off = T.mkConst(static_cast<uint32_t>(J));
      SymVal CS = MS.read(Off);
      SymVal CT = MT.read(Off);
      if (CS.Val == CT.Val && CS.Poison == CT.Poison)
        continue; // syntactically identical
      Viol = T.mkOr(Viol, refineViolation(T, CS, CT));
    }
  }
  return Viol;
}

bool RefinementSession::Impl::memoProbe(TermId Viol,
                                        const smt::SatBudget &Budget,
                                        TVResult &Out) {
  auto It = QueryMemo.find(Viol);
  if (It == QueryMemo.end() ||
      It->second.Budget.MaxConflicts != Budget.MaxConflicts ||
      It->second.Budget.MaxPropagations != Budget.MaxPropagations ||
      It->second.Budget.MaxClauses != Budget.MaxClauses)
    return false;
  Out = It->second.Result;
  // Report only work actually done by this replay — and no portfolio
  // race ran, so the replay does not count as a win or a fallback.
  Out.Conflicts = Out.Propagations = Out.Restarts = 0;
  Out.TrailReused = 0;
  Out.ConeVars = Out.ConeClauses = 0;
  Out.PortfolioArm = 0;
  Out.FastConflicts = Out.FastPropagations = Out.FastRestarts = 0;
  Out.FastTrailReused = Out.FastConeVars = Out.FastConeClauses = 0;
  return true;
}

void RefinementSession::Impl::finishResult(TVResult &Out,
                                           const smt::SmtResult &R) {
  Out.Conflicts = R.ConflictsUsed;
  Out.Propagations = R.PropagationsUsed;
  Out.Restarts = R.RestartsUsed;
  Out.TrailReused = R.TrailReused;
  Out.ConeVars = R.ConeVars;
  Out.ConeClauses = R.ConeClauses;
  Out.Clauses = R.ClauseCount;
  Out.SatVars = R.VarCount;
  Out.LearntLive = R.LearntLive;
  Out.AvgLBD = R.AvgLBD;
  switch (R.R) {
  case smt::SatResult::Unsat:
    Out.V = TVVerdict::Equivalent;
    Out.Detail = "refinement holds on the bounded domain";
    break;
  case smt::SatResult::Unknown:
    Out.V = TVVerdict::Inconclusive;
    Out.Detail = format("solver budget exhausted (%llu conflicts)",
                        static_cast<unsigned long long>(R.ConflictsUsed));
    break;
  case smt::SatResult::Sat: {
    Out.V = TVVerdict::Inequivalent;
    // Render the counterexample: scalar params, array sizes, initial
    // cells.
    std::string CE;
    for (const std::string &Name : In.scalarNames()) {
      TermId P = In.scalar(Name);
      auto It = R.Model.find(P);
      if (It != R.Model.end())
        appendf(CE, "%s = %d\n", Name.c_str(),
                static_cast<int32_t>(It->second));
    }
    for (const std::string &Name : In.arrayNames()) {
      TermId SZ = In.arraySize(Name);
      auto It = R.Model.find(SZ);
      if (It != R.Model.end())
        appendf(CE, "alloc-size(%s) = %d\n", Name.c_str(),
                static_cast<int32_t>(It->second));
      const std::vector<SymVal> &Base =
          In.arrayBase(Name, /*Cap=*/0); // existing entries only
      std::string Cells;
      for (size_t K = 0; K < Base.size() && K < 8; ++K) {
        auto CIt = R.Model.find(Base[K].Val);
        appendf(Cells, "%s%d", K ? ", " : "",
                CIt == R.Model.end() ? 0
                                     : static_cast<int32_t>(CIt->second));
      }
      if (!Cells.empty())
        appendf(CE, "%s[0..] = {%s}\n", Name.c_str(), Cells.c_str());
    }
    Out.Counterexample = CE;
    Out.Detail = "refinement violated; counterexample found";
    break;
  }
  }
}

TVResult RefinementSession::Impl::solveIsolated(
    TermId Viol, const smt::SatBudget &Budget,
    std::unique_ptr<smt::IncrementalSolver> &SoundFork,
    std::unique_ptr<smt::IncrementalSolver> &FastFork, bool FastDirect,
    bool RaceFast) {
  TVResult Out;
  if (FastIS && RaceFast) {
    // Portfolio race, fast racer first: shared-learnt + cone projection +
    // trail reuse, under a probe slice of the query budget (the test
    // hook can pinch it further to force the fallback path).
    smt::SatBudget FastB = Budget;
    uint64_t Div = Opts.PortfolioProbeDiv ? Opts.PortfolioProbeDiv : 1;
    FastB.MaxConflicts = std::max<uint64_t>(FastB.MaxConflicts / Div, 1);
    if (Opts.PortfolioFastMaxConflicts < FastB.MaxConflicts)
      FastB.MaxConflicts = Opts.PortfolioFastMaxConflicts;
    smt::SmtResult RF;
    if (FastDirect) {
      // Sequential dispatch: search the fast base itself so learnt
      // clauses accumulate across queries (heuristics rewound per query).
      FastIS->restoreHeuristics();
      RF = FastIS->check(Viol, FastB);
    } else {
      // Batched dispatch: fork the fast base as snapshotted at fan-out so
      // cells stay independent of solve order and worker count.
      if (!FastFork)
        FastFork.reset(new smt::IncrementalSolver(*FastIS));
      else
        FastFork->assignFrom(*FastIS);
      FastFork->restoreHeuristics();
      RF = FastFork->check(Viol, FastB);
    }
    Out.PortfolioArm = 1;
    Out.FastConflicts = RF.ConflictsUsed;
    Out.FastPropagations = RF.PropagationsUsed;
    Out.FastRestarts = RF.RestartsUsed;
    Out.FastTrailReused = RF.TrailReused;
    Out.FastConeVars = RF.ConeVars;
    Out.FastConeClauses = RF.ConeClauses;
    if (RF.R != smt::SatResult::Unknown) {
      // Both racers run complete searches, so a decided fast verdict is
      // sound; accept it without paying for the sound racer at all.
      finishResult(Out, RF);
      return Out;
    }
    // Indeterminate fast racer (budget exhaustion — the only way the
    // racers can "disagree"): fall back to the sound fork, whose verdict
    // always stands and is bit-identical to plain fork-per-query solving
    // because the sound base was never searched.
    Out.PortfolioArm = 2;
    if (!SoundFork)
      SoundFork.reset(new smt::IncrementalSolver(IS));
    else
      SoundFork->assignFrom(IS);
    smt::SmtResult RS = SoundFork->check(Viol, Budget);
    // Headline counters total the work of both racers, keeping the
    // StageSatWork/span/counter parity invariant honest about cost.
    RS.ConflictsUsed += RF.ConflictsUsed;
    RS.PropagationsUsed += RF.PropagationsUsed;
    RS.RestartsUsed += RF.RestartsUsed;
    RS.TrailReused += RF.TrailReused;
    finishResult(Out, RS);
    return Out;
  }
  // Adaptive skip (portfolio session, RaceFast false): the fast arm has
  // already proven inconclusive at this budget class, so only the sound
  // fork runs. Marked as a fallback with zero fast-arm work — FastConflicts
  // distinguishes "raced and lost" from "skipped".
  if (FastIS)
    Out.PortfolioArm = 2;
  if (!SoundFork)
    SoundFork.reset(new smt::IncrementalSolver(IS));
  else
    SoundFork->assignFrom(IS);
  smt::SmtResult R = SoundFork->check(Viol, Budget);
  finishResult(Out, R);
  return Out;
}

TVResult RefinementSession::Impl::queryBody(int CellLo, int CellHi,
                                            const smt::SatBudget &Budget,
                                            bool Isolate) {
  if (HasImmediate)
    return Immediate;
  auto Start = std::chrono::steady_clock::now();
  auto elapsed = [&Start]() {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - Start)
            .count());
  };
  TVResult Out;

  size_t TermsBefore = T.size();
  TermId Viol = buildViolation(CellLo, CellHi);

  // Memo hit: an isolated query is deterministic from the pristine base,
  // so a syntactically identical violation (same TermId, thanks to
  // hash-consing) under the exact same budget replays its verdict — with
  // none of the SAT work. Budget equality covers every field: a retry
  // with a loosened propagation/clause budget must re-solve. Shared-learnt
  // sessions memoize too: replaying the first occurrence's verdict keeps
  // duplicate cells verdict-identical to the fork modes (re-solving in a
  // now-warmer solver would not be).
  if (memoProbe(Viol, Budget, Out)) {
    obs::counter("tv.memo_hits").inc();
    Out.SolveNanos = elapsed();
    return Out;
  }

  // Memout check on this query's own footprint: the base encoding plus
  // whatever this query built. The shared table holds earlier queries'
  // terms too, but charging them here would make verdicts depend on query
  // order (a scratch session never sees them).
  size_t QueryTerms = BaseTerms + (T.size() - TermsBefore);
  Out.TermCount = QueryTerms;
  if (QueryTerms > Opts.MaxTerms) {
    Out.V = TVVerdict::Inconclusive;
    Out.Detail = format("term limit exceeded (%zu terms): encoding too "
                        "large (out-of-memory analogue)",
                        QueryTerms);
    return Out;
  }
  if (Isolate) {
    size_t TC = Out.TermCount;
    bool RaceFast = FastIS && Budget.MaxConflicts > FastFailedBudgetHi;
    Out = solveIsolated(Viol, Budget, Fork, FastForkSeq,
                        /*FastDirect=*/true, RaceFast);
    Out.TermCount = TC;
    // Fast racer exhausted its budget without deciding: stop racing this
    // budget class (and anything smaller) for the rest of the session.
    if (RaceFast && Out.PortfolioArm == 2)
      FastFailedBudgetHi = std::max(FastFailedBudgetHi, Budget.MaxConflicts);
  } else {
    IS.restoreHeuristics(); // no-op outside shared-learnt sessions
    smt::SmtResult R = IS.check(Viol, Budget);
    finishResult(Out, R);
  }
  Out.SolveNanos = elapsed();
  QueryMemo[Viol] = MemoEntry{Budget, Out};
  return Out;
}

/// Batched stage-4 dispatch. Three phases keep it bit-identical to the
/// sequential loop at any worker count:
///
///   A. Build every cell's violation term single-threaded, in cell order
///      (the TermTable is not thread-safe, and this is the exact term-
///      construction order of the sequential loop, so hash-consed TermIds
///      and the per-query term accounting are reproduced). Memo hits and
///      intra-batch duplicates are planned as replays here.
///   B. Solve the remaining unique violations on \p Workers threads. The
///      TermTable is *const* during solving, and every solve runs in the
///      thread's own fork of state snapshotted before the fan-out (sound
///      base, and fast base in portfolio sessions), so results do not
///      depend on scheduling. Shared-learnt sessions cannot fork; they
///      solve sequentially on the shared base in cell order instead.
///   C. Merge in cell order: replay duplicates from the first occurrence
///      (zeroed work fields, exactly like a memo hit), emit the same
///      per-query span/counter shape as the sequential path, store memo
///      entries, and truncate after the first Inequivalent cell —
///      mirroring the sequential loop's early exit, so work solved past
///      that point is discarded rather than reported.
std::vector<TVResult>
RefinementSession::Impl::queryBatch(const std::vector<int> &Cells,
                                    const smt::SatBudget &Budget,
                                    int Workers) {
  obs::Span Fan("tv", "tv.cell_fanout");
  auto nowNs = []() { return std::chrono::steady_clock::now(); };
  auto deltaNs = [](std::chrono::steady_clock::time_point From) {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - From)
            .count());
  };

  struct CellPlan {
    int Cell = 0;
    TermId Viol = smt::NoTerm;
    size_t QueryTerms = 0;
    int Dup = -1;      ///< Earlier plan index this cell replays.
    int SolveIdx = -1; ///< Index into Solves when solving fresh.
    bool HasReady = false;
    bool MemoHit = false;
    TVResult Ready; ///< Immediate/memo/memout result, or the solve result.
    uint64_t BuildNanos = 0;
  };
  std::vector<CellPlan> Plans(Cells.size());
  std::vector<size_t> Solves;
  std::unordered_map<TermId, int> FirstOcc;

  // Phase A: plan every cell (single-threaded term construction).
  for (size_t I2 = 0; I2 < Cells.size(); ++I2) {
    CellPlan &P = Plans[I2];
    P.Cell = Cells[I2];
    if (HasImmediate) {
      P.Ready = Immediate;
      P.HasReady = true;
      continue;
    }
    auto BStart = nowNs();
    size_t TermsBefore = T.size();
    P.Viol = buildViolation(P.Cell, P.Cell + 1);
    P.QueryTerms = BaseTerms + (T.size() - TermsBefore);
    P.BuildNanos = deltaNs(BStart);
    TVResult Hit;
    if (memoProbe(P.Viol, Budget, Hit)) {
      Hit.SolveNanos = P.BuildNanos;
      P.Ready = Hit;
      P.HasReady = true;
      P.MemoHit = true;
      continue;
    }
    auto F = FirstOcc.find(P.Viol);
    if (F != FirstOcc.end()) {
      P.Dup = F->second;
      continue;
    }
    if (P.QueryTerms > Opts.MaxTerms) {
      P.Ready.V = TVVerdict::Inconclusive;
      P.Ready.TermCount = P.QueryTerms;
      P.Ready.Detail =
          format("term limit exceeded (%zu terms): encoding too "
                 "large (out-of-memory analogue)",
                 P.QueryTerms);
      P.HasReady = true;
      continue; // not a solve: a later duplicate re-plans on its own
    }
    FirstOcc.emplace(P.Viol, static_cast<int>(I2));
    P.SolveIdx = static_cast<int>(Solves.size());
    Solves.push_back(I2);
  }

  // Phase B: solve the unique violations. The adaptive fast-arm gate is
  // sampled ONCE before the fan-out and never written during it, so every
  // solve sees the same decision regardless of worker count or schedule.
  const size_t NSolve = Solves.size();
  int W = Workers < 1 ? 1 : Workers;
  const bool RaceFast = FastIS && Budget.MaxConflicts > FastFailedBudgetHi;
  if (Opts.SharedLearnt) {
    // No forking in shared-learnt sessions: sequential solves on the
    // shared base, in cell order, exactly like the sequential loop.
    for (size_t K = 0; K < NSolve; ++K) {
      support::throwIfCancelled("tv.cell_solve");
      CellPlan &P = Plans[Solves[K]];
      auto SStart = nowNs();
      IS.restoreHeuristics();
      smt::SmtResult R = IS.check(P.Viol, Budget);
      TVResult Res;
      finishResult(Res, R);
      Res.TermCount = P.QueryTerms;
      Res.SolveNanos = P.BuildNanos + deltaNs(SStart);
      P.Ready = Res;
    }
  } else if (NSolve > 0) {
    std::atomic<size_t> Next{0};
    std::vector<std::exception_ptr> Errs(NSolve);
    // Thread-locals do not cross the fan-out: capture the task's token
    // here and poll it in every worker, so a deadline expiring mid-batch
    // drains the remaining solves immediately (the CancelledError lands
    // in Errs and is rethrown after the join below).
    support::CancelToken *ParentTok = support::currentCancelToken();
    auto workerFn = [&]() {
      // Thread-owned fork buffers: reused across this thread's solves,
      // never shared (the bases they fork from are only read).
      std::unique_ptr<smt::IncrementalSolver> SoundFork, FastFork;
      for (;;) {
        size_t K = Next.fetch_add(1);
        if (K >= NSolve)
          return;
        CellPlan &P = Plans[Solves[K]];
        try {
          if (ParentTok && ParentTok->expired())
            throw support::CancelledError("tv.cell_solve");
          auto SStart = nowNs();
          TVResult Res = solveIsolated(P.Viol, Budget, SoundFork, FastFork,
                                       /*FastDirect=*/false, RaceFast);
          Res.TermCount = P.QueryTerms;
          Res.SolveNanos = P.BuildNanos + deltaNs(SStart);
          P.Ready = Res;
        } catch (...) {
          Errs[K] = std::current_exception();
        }
      }
    };
    size_t Spawn =
        std::min(static_cast<size_t>(W), NSolve) - 1; // this thread helps
    std::vector<std::thread> Threads;
    Threads.reserve(Spawn);
    for (size_t K = 0; K < Spawn; ++K)
      Threads.emplace_back(workerFn);
    workerFn();
    for (std::thread &Th : Threads)
      Th.join();
    for (size_t K = 0; K < NSolve; ++K)
      if (Errs[K])
        std::rethrow_exception(Errs[K]);
  }
  // Deterministic gate update after the barrier: one batch shares one
  // budget, so any fast-arm exhaustion in it retires the whole budget
  // class. Computed from ALL planned solves (Phase B completes them all),
  // so the outcome is identical at any worker count.
  if (RaceFast)
    for (size_t K = 0; K < NSolve; ++K)
      if (Plans[Solves[K]].Ready.PortfolioArm == 2) {
        FastFailedBudgetHi =
            std::max(FastFailedBudgetHi, Budget.MaxConflicts);
        break;
      }

  // Phase C: deterministic merge in cell order.
  std::vector<TVResult> Out;
  Out.reserve(Cells.size());
  for (size_t I2 = 0; I2 < Plans.size(); ++I2) {
    CellPlan &P = Plans[I2];
    TVResult R;
    if (P.HasReady) {
      R = P.Ready;
      if (P.MemoHit)
        obs::counter("tv.memo_hits").inc();
    } else if (P.Dup >= 0) {
      // Zeroed replay of the first occurrence's solve — what the memo
      // would have served had the cells run sequentially.
      R = Plans[static_cast<size_t>(P.Dup)].Ready;
      R.Conflicts = R.Propagations = R.Restarts = 0;
      R.TrailReused = 0;
      R.ConeVars = R.ConeClauses = 0;
      R.PortfolioArm = 0;
      R.FastConflicts = R.FastPropagations = R.FastRestarts = 0;
      R.FastTrailReused = R.FastConeVars = R.FastConeClauses = 0;
      R.SolveNanos = P.BuildNanos;
      obs::counter("tv.memo_hits").inc();
    } else {
      R = P.Ready;
      QueryMemo[P.Viol] = MemoEntry{Budget, R};
    }
    {
      // Same per-query trace/counter shape as the sequential path; the
      // span's own duration is merge-time (the true encode+solve wall is
      // in the SolveNanos histogram and the fan-out span), but its args
      // carry the real work counters the parity gates sum.
      obs::Span S("tv", "tv.query");
      emitQuerySpanArgs(S, R, P.Cell, 1);
    }
    emitQueryCounters(R);
    Out.push_back(std::move(R));
    if (Out.back().V == TVVerdict::Inequivalent)
      break; // sequential early exit: later cells are never reported
  }
  Fan.arg("cells", static_cast<uint64_t>(Cells.size()));
  Fan.arg("workers", static_cast<uint64_t>(W));
  Fan.arg("solves", static_cast<uint64_t>(NSolve));
  return Out;
}

RefinementSession::RefinementSession(const VFunction &Src,
                                     const VFunction &Tgt,
                                     const RefineOptions &Opts)
    : I(new Impl(Src, Tgt, Opts)) {}

RefinementSession::~RefinementSession() = default;
RefinementSession::RefinementSession(RefinementSession &&) noexcept = default;

TVResult RefinementSession::checkFull(const smt::SatBudget &Budget) {
  int Lo = 0, Hi = I->Opts.CompareWindow;
  if (I->Opts.CellFilter >= 0) {
    Lo = I->Opts.CellFilter;
    Hi = I->Opts.CellFilter + 1;
  }
  return I->query(Lo, Hi, Budget, /*Isolate=*/!I->Opts.SharedLearnt);
}

TVResult RefinementSession::checkCell(int Cell, const smt::SatBudget &Budget) {
  return I->query(Cell, Cell + 1, Budget, /*Isolate=*/!I->Opts.SharedLearnt);
}

std::vector<TVResult>
RefinementSession::checkCells(const std::vector<int> &Cells,
                              const smt::SatBudget &Budget, int Workers) {
  return I->queryBatch(Cells, Budget, Workers);
}

//===----------------------------------------------------------------------===//
// One-shot wrapper
//===----------------------------------------------------------------------===//

TVResult lv::tv::checkRefinement(const VFunction &Src, const VFunction &Tgt,
                                 const RefineOptions &Opts) {
  // Single-use session: solve directly in the base, no fork needed.
  RefinementSession S(Src, Tgt, Opts);
  int Lo = 0, Hi = Opts.CompareWindow;
  if (Opts.CellFilter >= 0) {
    Lo = Opts.CellFilter;
    Hi = Opts.CellFilter + 1;
  }
  return S.I->query(Lo, Hi, Opts.Budget, /*Isolate=*/false);
}
