//===- tv/Refine.h - bounded translation validation -------------*- C++ -*-===//
///
/// \file
/// Refinement checking of a vectorized candidate against its scalar source
/// (the project's Alive2): both functions are executed symbolically from a
/// shared initial state, and the SAT core searches for an input where the
/// source is UB-free but the target misbehaves:
///
///   violation := assumptions && !UB_src &&
///                (UB_tgt || return-differs || exists cell: cell-differs)
///
/// where a cell/return "differs" when the source value is non-poison and
/// the target value is poison or unequal. Unsat => Equivalent (within the
/// bounded domain, "modulo unrolling"), Sat => Inequivalent with a concrete
/// counterexample, Unknown => Inconclusive (the paper's timeout).
///
/// Options carry the paper's domain-specific devices: the divisibility
/// assumption `(end - start) % m == 0` from loop alignment (§3.1), separate
/// unroll bounds per side, and a cell filter for spatial case splitting
/// (§3.3).
///
//===----------------------------------------------------------------------===//

#ifndef LV_TV_REFINE_H
#define LV_TV_REFINE_H

#include "smt/Sat.h"
#include "tv/SymExec.h"
#include "vir/IR.h"

#include <memory>
#include <string>
#include <vector>

namespace lv {
namespace tv {

/// Divisibility assumption `(Param + Offset) % Mod == 0` (paper §3.1:
/// "(end1 - start1) % m == 0", with end expressed as n + Offset).
struct DivAssumption {
  std::string Param;
  int32_t Offset = 0;
  int32_t Mod = 8;
};

/// Verification options.
struct RefineOptions {
  ExecOptions SrcExec{18, 24}; ///< Source unroll bound / memory window.
  ExecOptions TgtExec{4, 24};  ///< Target (vectorized) side.
  int32_t ScalarMax = 16;      ///< Scalar params constrained to [0, this].
  std::vector<DivAssumption> Divs;
  int CompareWindow = 24;      ///< Cells compared per region.
  int CellFilter = -1;         ///< >= 0: compare only this cell index
                               ///< (spatial case splitting).
  smt::SatBudget Budget{/*MaxConflicts=*/25'000, UINT64_MAX,
                        /*MaxClauses=*/3'000'000};
                               ///< SAT budget; exceeded => Inconclusive.
  size_t MaxTerms = 2'000'000; ///< Term-DAG cap (memout analogue).
  /// Query-scoped solving knobs (cone projection, restart trail reuse)
  /// applied to every SAT query of the session.
  smt::SatOptions Solver;
  /// Sessions only: run queries directly on the shared base solver (learnt
  /// clauses, VSIDS state, and watcher positions carry across queries)
  /// instead of forking a pristine copy per query. Cheaper when cone
  /// projection keeps each query inside its own clause cone; perturbs
  /// search order, so it ships gated by the bench_table3 parity matrix.
  bool SharedLearnt = false;
  /// Sessions only: portfolio racing (see smt/README.md "Portfolio
  /// mode"). Every query first runs a *fast arm* — a dedicated
  /// shared-learnt base with cone projection and trail reuse — under the
  /// same budget; a decided fast verdict is accepted (both arms run
  /// complete searches, so any Sat/Unsat they produce is sound), while an
  /// indeterminate one falls back to the *sound arm*, a throwaway fork of
  /// the pristine base exactly like plain fork-per-query solving. The
  /// sound base is never searched, so fallback verdicts are bit-identical
  /// to SharedLearnt=false solving by construction. An adaptive gate
  /// stops racing a budget class once the fast arm has exhausted it
  /// without deciding (skipping the race is equally sound: the sound
  /// fork's verdict is the reference either way), so budget-bound stages
  /// like spatial splitting degrade to pure fork cost instead of paying
  /// for both arms on every query. Mutually exclusive with SharedLearnt
  /// (the fast arm already owns the shared-learnt base); ignored when
  /// both are set.
  bool Portfolio = false;
  /// Fast-arm probe divisor: the fast racer runs under MaxConflicts /
  /// PortfolioProbeDiv (floor 1) of the query's conflict budget. On a
  /// multi-core wall-clock race the sound arm's latency is unaffected by
  /// the fast arm; this sequential emulation bounds the added latency of
  /// a losing fast probe to ~1/Div of the query budget instead. Verdict-
  /// neutral: a capped fast arm can only fall back more, and the sound
  /// fork's verdict is the parity reference. Corpus data shows fast-arm
  /// wins land well under 1/8 of the budget while losses always exhaust
  /// it, so the probe keeps the wins and caps the double-pay.
  uint64_t PortfolioProbeDiv = 8;
  /// Test hook: caps the fast arm's conflict budget below the query
  /// budget (UINT64_MAX: no cap). Tests force fast-arm budget exhaustion
  /// with 0 to pin that the sound fork verdict wins every fallback.
  uint64_t PortfolioFastMaxConflicts = UINT64_MAX;
};

/// Verdicts mirror the paper's Table 3 labels.
enum class TVVerdict : uint8_t {
  Equivalent,
  Inequivalent,
  Inconclusive, ///< Budget exhausted (timeout/memout analogue).
  Unsupported,  ///< Encoder limitation (unmodeled construct analogue).
};

/// Result with diagnostics and query-size statistics. SAT statistics are
/// per-query deltas (comparable between one-shot and incremental solving).
struct TVResult {
  TVVerdict V = TVVerdict::Unsupported;
  std::string Counterexample; ///< Human-readable model when Inequivalent.
  std::string Detail;
  uint64_t Conflicts = 0;
  uint64_t Propagations = 0;
  uint64_t Restarts = 0;
  uint64_t TrailReused = 0; ///< Trail literals kept across restarts.
  uint64_t ConeVars = 0;    ///< Query-cone size (0: projection off).
  uint64_t ConeClauses = 0;
  uint64_t Clauses = 0;
  uint64_t SatVars = 0;
  uint64_t LearntLive = 0;  ///< Learnt-clause DB size after the query.
  double AvgLBD = 0.0;      ///< Mean learnt-clause LBD (solver health).
  uint64_t SolveNanos = 0;  ///< Wall time of encode+solve for this query.
  size_t TermCount = 0;

  /// Portfolio-mode accounting (all zero outside portfolio sessions).
  /// The headline counters above total the work of *both* racers, so
  /// StageSatWork/span/counter parity is preserved; the Fast* fields
  /// break out the fast racer's share (sound share = total - fast).
  /// 0: not a portfolio query; 1: fast arm decided; 2: the sound arm
  /// produced the verdict — either the fast racer ran and exhausted its
  /// budget (FastConflicts > 0) or the adaptive gate skipped it outright
  /// (all Fast* fields zero).
  uint8_t PortfolioArm = 0;
  uint64_t FastConflicts = 0;
  uint64_t FastPropagations = 0;
  uint64_t FastRestarts = 0;
  uint64_t FastTrailReused = 0;
  uint64_t FastConeVars = 0;   ///< Fast racer's query-cone size.
  uint64_t FastConeClauses = 0;

  bool equivalent() const { return V == TVVerdict::Equivalent; }
  bool decided() const {
    return V == TVVerdict::Equivalent || V == TVVerdict::Inequivalent;
  }
};

/// A reusable refinement-checking context. Symbolic execution of both
/// sides, the shared assumption prefix, and the bit-blasted encoding are
/// built once into a pristine base solver; checkFull()/checkCell() then
/// run each query in a cheap throwaway fork of that base (flat copies of
/// the clause arena and blaster memos — see IncrementalSolver). The
/// spatial-splitting stage (paper §3.3) asks one query per cell over the
/// same symbolic states — with a session the per-query cost drops from
/// "symbolic execution + full blast + solve" to "fork + cell-cone blast
/// + solve". Because the base is never searched, a fork behaves exactly
/// like a scratch solver over the same encoding: verdicts are identical
/// to one-shot checkRefinement by construction (learnt clauses are NOT
/// shared across queries — warm-solver state measurably distorts
/// budget-bounded searches). RefineOptions::SharedLearnt flips the
/// session to the non-forking mode instead: queries run directly on the
/// base, sharing learnt clauses — profitable once
/// RefineOptions::Solver.ConeProjection confines each query to its own
/// clause cone (see smt/README.md "Query-scoped solving"). Identical
/// queries (same violation TermId, same budget) replay their memoized
/// verdict without solving in either mode.
///
/// \p Src and \p Tgt must outlive the session.
class RefinementSession {
public:
  RefinementSession(const vir::VFunction &Src, const vir::VFunction &Tgt,
                    const RefineOptions &Opts);
  ~RefinementSession();
  RefinementSession(RefinementSession &&) noexcept;

  /// Full compare-window query — the stage-2/3 shape (honours
  /// Opts.CellFilter for compatibility with one-shot checkRefinement).
  TVResult checkFull(const smt::SatBudget &Budget);

  /// Single-cell query — the stage-4 spatial-splitting shape.
  TVResult checkCell(int Cell, const smt::SatBudget &Budget);

  /// Batched stage-4 dispatch: per-cell queries for \p Cells solved with
  /// \p Workers threads. The cell violation terms are all built
  /// single-threaded first (the TermTable is not thread-safe, but it is
  /// *const* during solving), duplicate violations collapse through the
  /// query memo exactly as in the sequential loop, and each remaining
  /// unique query solves in its own throwaway fork on whichever thread
  /// picks it up. Results merge in cell order — and, mirroring the
  /// sequential stage-4 loop's early exit, the returned vector is
  /// truncated after the first Inequivalent cell. Because every solve
  /// runs in an isolated fork of state snapshotted before the fan-out,
  /// results are bit-identical at any worker count. Requires isolated
  /// queries: SharedLearnt sessions fall back to Workers=1 semantics
  /// (still batch-built, solved sequentially on the shared base).
  std::vector<TVResult> checkCells(const std::vector<int> &Cells,
                                   const smt::SatBudget &Budget,
                                   int Workers);

private:
  struct Impl;
  std::unique_ptr<Impl> I;

  friend TVResult checkRefinement(const vir::VFunction &Src,
                                  const vir::VFunction &Tgt,
                                  const RefineOptions &Opts);
};

/// Checks that \p Tgt refines \p Src under \p Opts (one-shot wrapper
/// around a fresh RefinementSession).
TVResult checkRefinement(const vir::VFunction &Src, const vir::VFunction &Tgt,
                         const RefineOptions &Opts = RefineOptions());

const char *verdictName(TVVerdict V);

} // namespace tv
} // namespace lv

#endif // LV_TV_REFINE_H
