//===- tv/SymExec.cpp - symbolic execution of VIR ----------------------------===//

#include "tv/SymExec.h"

#include "support/Cancel.h"
#include "support/Format.h"

#include <cassert>

using namespace lv;
using namespace lv::tv;
using namespace lv::vir;
using smt::TermId;
using smt::TermTable;

//===----------------------------------------------------------------------===//
// SharedInputs
//===----------------------------------------------------------------------===//

TermId SharedInputs::scalar(const std::string &Name) {
  auto It = Scalars.find(Name);
  if (It != Scalars.end())
    return It->second;
  TermId V = T.mkVar(Name);
  Scalars.emplace(Name, V);
  ScalarOrder.push_back(Name);
  return V;
}

TermId SharedInputs::arraySize(const std::string &Name) {
  auto It = Sizes.find(Name);
  if (It != Sizes.end())
    return It->second;
  TermId V = T.mkVar("size." + Name);
  Sizes.emplace(Name, V);
  return V;
}

const std::vector<SymVal> &SharedInputs::arrayBase(const std::string &Name,
                                                   int Cap) {
  auto It = Bases.find(Name);
  if (It == Bases.end()) {
    It = Bases.emplace(Name, std::vector<SymVal>()).first;
    ArrayOrder.push_back(Name);
  }
  std::vector<SymVal> &B = It->second;
  while (static_cast<int>(B.size()) < Cap) {
    SymVal V;
    V.Val = T.mkVar(format("%s[%zu]", Name.c_str(), B.size()));
    V.Poison = T.mkFalse();
    B.push_back(V);
  }
  return B;
}

//===----------------------------------------------------------------------===//
// SymMemory
//===----------------------------------------------------------------------===//

SymMemory::SymMemory(TermTable &T, const std::string &Name, int Cap,
                     TermId Size, std::vector<SymVal> Base)
    : T(T), Name(Name), Cap(Cap), Size(Size), Base(std::move(Base)) {}

SymMemory::SymMemory(TermTable &T, const std::string &Name, int Cap,
                     int64_t LocalSize)
    : T(T), Name(Name), Cap(Cap),
      Size(T.mkConstS(static_cast<int32_t>(LocalSize))) {
  // Local arrays start uninitialized: reading them yields poison.
  Base.assign(static_cast<size_t>(Cap), SymVal{T.mkConst(0), T.mkTrue()});
}

SymVal SymMemory::readBase(TermId Off) const {
  uint32_t C;
  if (T.isConst(Off, C)) {
    if (C < Base.size())
      return Base[C];
    // Outside the bounded window: unconstrained (fresh-var-free fallback;
    // accesses here are excluded by the size-domain assumption).
    return SymVal{T.mkConst(0), T.mkTrue()};
  }
  // Symbolic offset: mux over the window.
  SymVal Acc{T.mkConst(0), T.mkTrue()};
  for (int I = static_cast<int>(Base.size()) - 1; I >= 0; --I) {
    TermId Hit = T.mkEq(Off, T.mkConst(static_cast<uint32_t>(I)));
    Acc.Val = T.mkIte(Hit, Base[static_cast<size_t>(I)].Val, Acc.Val);
    Acc.Poison =
        T.mkBIte(Hit, Base[static_cast<size_t>(I)].Poison, Acc.Poison);
  }
  return Acc;
}

SymVal SymMemory::read(TermId Off) const {
  SymVal Acc = readBase(Off);
  // Newest write wins: fold from oldest to newest.
  for (const WriteRec &W : Log) {
    TermId Hit = T.mkAnd(W.Guard, T.mkEq(Off, W.Off));
    Acc.Val = T.mkIte(Hit, W.V.Val, Acc.Val);
    Acc.Poison = T.mkBIte(Hit, W.V.Poison, Acc.Poison);
  }
  return Acc;
}

void SymMemory::write(TermId Off, SymVal V, TermId Guard) {
  if (T.isFalse(Guard))
    return;
  Log.push_back(WriteRec{Off, V, Guard});
}

TermId SymMemory::inBounds(TermId Off) const {
  return T.mkAnd(T.mkSge(Off, T.mkConst(0)), T.mkSlt(Off, Size));
}

TermId SymMemory::inBoundsRange(TermId Off, int N) const {
  TermId End = T.mkAdd(Off, T.mkConst(static_cast<uint32_t>(N)));
  return T.mkAnd(T.mkSge(Off, T.mkConst(0)), T.mkSle(End, Size));
}

TermId SymMemory::sizeDomain() const {
  return T.mkAnd(T.mkSge(Size, T.mkConst(0)),
                 T.mkSle(Size, T.mkConst(static_cast<uint32_t>(Cap))));
}

//===----------------------------------------------------------------------===//
// Executor
//===----------------------------------------------------------------------===//

namespace {

/// Symbolic executor for one function.
class SymExec {
public:
  SymExec(const VFunction &F, TermTable &T, SharedInputs &In,
          const ExecOptions &Opts)
      : F(F), T(T), In(In), Opts(Opts) {}

  SymState run();

private:
  const VFunction &F;
  TermTable &T;
  SharedInputs &In;
  const ExecOptions &Opts;

  std::vector<SymVal> Scalars;
  std::vector<SymVec> Vectors;
  std::vector<SymMemory> Mems;
  TermId UB, Assum, RetCond;
  SymVal RetVal;
  std::string Error;

  struct LoopCtx {
    TermId Broken;    ///< Accumulated break conditions (whole loop).
    TermId Continued; ///< Accumulated continue conditions (this iteration).
  };
  std::vector<LoopCtx> Loops;

  void fail(const std::string &M) {
    if (Error.empty())
      Error = M;
  }

  SymVal &s(int R) { return Scalars[static_cast<size_t>(R)]; }
  SymVec &v(int R) { return Vectors[static_cast<size_t>(R)]; }

  void addUB(TermId Alive, TermId Cond) {
    UB = T.mkOr(UB, T.mkAnd(Alive, Cond));
  }

  /// Lane activity for blendv-style masks: MSB of the lane.
  TermId laneMsb(TermId V) {
    return T.mkEq(T.mkLShr(V, T.mkConst(31)), T.mkConst(1));
  }

  void execInstr(const Instr &I, TermId Alive);
  TermId execRegion(const Region &R, TermId Alive);
  TermId execRegionFrom(const Region &R, size_t From, TermId Alive);
  TermId execNode(const Node &N, TermId Alive);

  /// Executes a region's nodes from \p From whose guard may be false:
  /// register effects are merged back under the guard (memory writes and
  /// UB contributions are already guarded individually). This keeps
  /// registers correct across guarded loop iterations — e.g. a reduction
  /// accumulator must not pick up contributions from iterations excluded
  /// by the trip count — and across mid-region guard narrowing (a
  /// `continue` must mask every later register update for exited lanes).
  TermId execRegionGuardedMerge(const Region &R, TermId Alive,
                                size_t From = 0) {
    if (T.isFalse(Alive))
      return Alive;
    if (T.isTrue(Alive))
      return execRegionFrom(R, From, Alive);
    std::vector<SymVal> SavedS = Scalars;
    std::vector<SymVec> SavedV = Vectors;
    TermId Out = execRegionFrom(R, From, Alive);
    for (size_t R2 = 0; R2 < Scalars.size(); ++R2) {
      SymVal &NS = Scalars[R2];
      const SymVal &OS = SavedS[R2];
      if (NS.Val != OS.Val || NS.Poison != OS.Poison) {
        NS.Val = T.mkIte(Alive, NS.Val, OS.Val);
        NS.Poison = T.mkBIte(Alive, NS.Poison, OS.Poison);
      }
      for (size_t L = 0; L < Lanes; ++L) {
        SymVal &NV = Vectors[R2].Lane[L];
        const SymVal &OV = SavedV[R2].Lane[L];
        if (NV.Val != OV.Val || NV.Poison != OV.Poison) {
          NV.Val = T.mkIte(Alive, NV.Val, OV.Val);
          NV.Poison = T.mkBIte(Alive, NV.Poison, OV.Poison);
        }
      }
    }
    return Out;
  }
};

} // namespace

void SymExec::execInstr(const Instr &I, TermId Alive) {
  auto A = [&](size_t K) -> SymVal & { return s(I.Args[K]); };
  auto AV = [&](size_t K) -> SymVec & { return v(I.Args[K]); };
  TermId False = T.mkFalse();

  auto scalarBin = [&](TermId Val, TermId ExtraPoison) {
    SymVal R;
    R.Val = Val;
    R.Poison = T.mkOr(T.mkOr(A(0).Poison, A(1).Poison), ExtraPoison);
    s(I.Rd) = R;
  };

  switch (I.Opcode) {
  case Op::ConstI32:
    s(I.Rd) = SymVal{T.mkConstS(static_cast<int32_t>(I.Imm)), False};
    return;
  case Op::Copy:
    if (F.RegTypes[static_cast<size_t>(I.Rd)] == VType::V8I32)
      v(I.Rd) = AV(0);
    else
      s(I.Rd) = A(0);
    return;
  case Op::Add:
    scalarBin(T.mkAdd(A(0).Val, A(1).Val),
              I.Nsw ? T.mkAddOvf(A(0).Val, A(1).Val) : False);
    return;
  case Op::Sub:
    scalarBin(T.mkSub(A(0).Val, A(1).Val),
              I.Nsw ? T.mkSubOvf(A(0).Val, A(1).Val) : False);
    return;
  case Op::Mul:
    scalarBin(T.mkMul(A(0).Val, A(1).Val),
              I.Nsw ? T.mkMulOvf(A(0).Val, A(1).Val) : False);
    return;
  case Op::SDiv:
  case Op::SRem: {
    TermId Zero = T.mkConst(0);
    TermId DivZero = T.mkEq(A(1).Val, Zero);
    TermId Ovf = T.mkAnd(T.mkEq(A(0).Val, T.mkConst(0x80000000u)),
                         T.mkEq(A(1).Val, T.mkConst(0xffffffffu)));
    addUB(Alive, T.mkOr(T.mkOr(A(0).Poison, A(1).Poison),
                        T.mkOr(DivZero, Ovf)));
    SymVal R;
    R.Val = I.Opcode == Op::SDiv ? T.mkSDiv(A(0).Val, A(1).Val)
                                 : T.mkSRem(A(0).Val, A(1).Val);
    R.Poison = False;
    s(I.Rd) = R;
    return;
  }
  case Op::Shl:
    scalarBin(T.mkShl(A(0).Val, T.mkBvAnd(A(1).Val, T.mkConst(31))), False);
    return;
  case Op::AShr:
    scalarBin(T.mkAShr(A(0).Val, T.mkBvAnd(A(1).Val, T.mkConst(31))), False);
    return;
  case Op::LShr:
    scalarBin(T.mkLShr(A(0).Val, T.mkBvAnd(A(1).Val, T.mkConst(31))), False);
    return;
  case Op::And:
    scalarBin(T.mkBvAnd(A(0).Val, A(1).Val), False);
    return;
  case Op::Or:
    scalarBin(T.mkBvOr(A(0).Val, A(1).Val), False);
    return;
  case Op::Xor:
    scalarBin(T.mkBvXor(A(0).Val, A(1).Val), False);
    return;
  case Op::ICmp: {
    TermId C;
    switch (I.P) {
    case Pred::EQ: C = T.mkEq(A(0).Val, A(1).Val); break;
    case Pred::NE: C = T.mkNe(A(0).Val, A(1).Val); break;
    case Pred::SLT: C = T.mkSlt(A(0).Val, A(1).Val); break;
    case Pred::SLE: C = T.mkSle(A(0).Val, A(1).Val); break;
    case Pred::SGT: C = T.mkSgt(A(0).Val, A(1).Val); break;
    case Pred::SGE: C = T.mkSge(A(0).Val, A(1).Val); break;
    }
    scalarBin(T.boolToBv(C), False);
    return;
  }
  case Op::Select: {
    TermId CB = T.mkNe(A(0).Val, T.mkConst(0));
    SymVal R;
    R.Val = T.mkIte(CB, A(1).Val, A(2).Val);
    R.Poison =
        T.mkOr(A(0).Poison, T.mkBIte(CB, A(1).Poison, A(2).Poison));
    s(I.Rd) = R;
    return;
  }
  case Op::SAbs: {
    TermId Neg = T.mkSlt(A(0).Val, T.mkConst(0));
    SymVal R;
    R.Val = T.mkIte(Neg, T.mkNeg(A(0).Val), A(0).Val);
    // abs(INT_MIN) overflows (UB in C -> poison).
    R.Poison = T.mkOr(A(0).Poison,
                      T.mkEq(A(0).Val, T.mkConst(0x80000000u)));
    s(I.Rd) = R;
    return;
  }
  case Op::SMax:
  case Op::SMin: {
    TermId C = I.Opcode == Op::SMax ? T.mkSgt(A(0).Val, A(1).Val)
                                    : T.mkSlt(A(0).Val, A(1).Val);
    scalarBin(T.mkIte(C, A(0).Val, A(1).Val), False);
    return;
  }
  case Op::Load: {
    SymMemory &M = Mems[static_cast<size_t>(I.Imm)];
    addUB(Alive, T.mkOr(A(0).Poison, T.mkNot(M.inBounds(A(0).Val))));
    s(I.Rd) = M.read(A(0).Val);
    return;
  }
  case Op::Store: {
    SymMemory &M = Mems[static_cast<size_t>(I.Imm)];
    addUB(Alive, T.mkOr(A(0).Poison, T.mkNot(M.inBounds(A(0).Val))));
    M.write(A(0).Val, A(1), Alive);
    return;
  }
  case Op::VBroadcast: {
    SymVec R;
    for (int L = 0; L < Lanes; ++L)
      R.Lane[static_cast<size_t>(L)] = A(0);
    v(I.Rd) = R;
    return;
  }
  case Op::VBuild: {
    SymVec R;
    for (int L = 0; L < Lanes; ++L)
      R.Lane[static_cast<size_t>(L)] = s(I.Args[static_cast<size_t>(L)]);
    v(I.Rd) = R;
    return;
  }
  case Op::VAdd:
  case Op::VSub:
  case Op::VMul:
  case Op::VMinS:
  case Op::VMaxS:
  case Op::VAnd:
  case Op::VOr:
  case Op::VXor:
  case Op::VAndNot:
  case Op::VCmpGt:
  case Op::VCmpEq: {
    SymVec R;
    const SymVec &X = AV(0);
    const SymVec &Y = AV(1);
    for (size_t L = 0; L < Lanes; ++L) {
      TermId XV = X.Lane[L].Val, YV = Y.Lane[L].Val;
      TermId Val;
      switch (I.Opcode) {
      case Op::VAdd: Val = T.mkAdd(XV, YV); break;
      case Op::VSub: Val = T.mkSub(XV, YV); break;
      case Op::VMul: Val = T.mkMul(XV, YV); break;
      case Op::VMinS: Val = T.mkIte(T.mkSlt(XV, YV), XV, YV); break;
      case Op::VMaxS: Val = T.mkIte(T.mkSgt(XV, YV), XV, YV); break;
      case Op::VAnd: Val = T.mkBvAnd(XV, YV); break;
      case Op::VOr: Val = T.mkBvOr(XV, YV); break;
      case Op::VXor: Val = T.mkBvXor(XV, YV); break;
      case Op::VAndNot: Val = T.mkBvAnd(T.mkBvNot(XV), YV); break;
      case Op::VCmpGt:
        Val = T.mkIte(T.mkSgt(XV, YV), T.mkConst(0xffffffffu), T.mkConst(0));
        break;
      case Op::VCmpEq:
        Val = T.mkIte(T.mkEq(XV, YV), T.mkConst(0xffffffffu), T.mkConst(0));
        break;
      default: Val = XV; break;
      }
      R.Lane[L].Val = Val;
      R.Lane[L].Poison = T.mkOr(X.Lane[L].Poison, Y.Lane[L].Poison);
    }
    v(I.Rd) = R;
    return;
  }
  case Op::VAbs: {
    SymVec R;
    const SymVec &X = AV(0);
    for (size_t L = 0; L < Lanes; ++L) {
      TermId Neg = T.mkSlt(X.Lane[L].Val, T.mkConst(0));
      // _mm256_abs_epi32 wraps on INT_MIN (no poison).
      R.Lane[L].Val = T.mkIte(Neg, T.mkNeg(X.Lane[L].Val), X.Lane[L].Val);
      R.Lane[L].Poison = X.Lane[L].Poison;
    }
    v(I.Rd) = R;
    return;
  }
  case Op::VBlend: {
    // Byte-exact value semantics; per-lane select semantics for poison.
    SymVec R;
    const SymVec &X = AV(0);
    const SymVec &Y = AV(1);
    const SymVec &M = AV(2);
    for (size_t L = 0; L < Lanes; ++L) {
      TermId MaskBytes = T.mkConst(0);
      for (int B = 0; B < 4; ++B) {
        TermId Bit = T.mkBvAnd(
            T.mkLShr(M.Lane[L].Val, T.mkConst(static_cast<uint32_t>(B * 8 + 7))),
            T.mkConst(1));
        TermId ByteMask = T.mkShl(T.mkMul(Bit, T.mkConst(0xffu)),
                                  T.mkConst(static_cast<uint32_t>(B * 8)));
        MaskBytes = T.mkBvOr(MaskBytes, ByteMask);
      }
      R.Lane[L].Val = T.mkBvOr(T.mkBvAnd(Y.Lane[L].Val, MaskBytes),
                               T.mkBvAnd(X.Lane[L].Val, T.mkBvNot(MaskBytes)));
      TermId Msb = laneMsb(M.Lane[L].Val);
      R.Lane[L].Poison =
          T.mkOr(M.Lane[L].Poison,
                 T.mkBIte(Msb, Y.Lane[L].Poison, X.Lane[L].Poison));
    }
    v(I.Rd) = R;
    return;
  }
  case Op::VSelect: {
    TermId CB = T.mkNe(A(0).Val, T.mkConst(0));
    SymVec R;
    const SymVec &X = AV(1);
    const SymVec &Y = AV(2);
    for (size_t L = 0; L < Lanes; ++L) {
      R.Lane[L].Val = T.mkIte(CB, X.Lane[L].Val, Y.Lane[L].Val);
      R.Lane[L].Poison =
          T.mkOr(A(0).Poison,
                 T.mkBIte(CB, X.Lane[L].Poison, Y.Lane[L].Poison));
    }
    v(I.Rd) = R;
    return;
  }
  case Op::VShlI:
  case Op::VShrLI:
  case Op::VShrAI:
  case Op::VShlV:
  case Op::VShrLV:
  case Op::VShrAV: {
    bool Variable = I.Opcode == Op::VShlV || I.Opcode == Op::VShrLV ||
                    I.Opcode == Op::VShrAV;
    SymVec R;
    const SymVec &X = AV(0);
    for (size_t L = 0; L < Lanes; ++L) {
      SymVal Amt = Variable ? AV(1).Lane[L] : A(1);
      TermId AmtV = Amt.Val;
      // AVX2 semantics: counts >= 32 saturate (0 for logical, sign for
      // arithmetic right shifts).
      TermId Big = T.mkUlt(T.mkConst(31), AmtV);
      TermId Masked = T.mkBvAnd(AmtV, T.mkConst(31));
      TermId Val;
      switch (I.Opcode) {
      case Op::VShlI:
      case Op::VShlV:
        Val = T.mkIte(Big, T.mkConst(0), T.mkShl(X.Lane[L].Val, Masked));
        break;
      case Op::VShrLI:
      case Op::VShrLV:
        Val = T.mkIte(Big, T.mkConst(0), T.mkLShr(X.Lane[L].Val, Masked));
        break;
      default:
        Val = T.mkIte(Big, T.mkAShr(X.Lane[L].Val, T.mkConst(31)),
                      T.mkAShr(X.Lane[L].Val, Masked));
        break;
      }
      R.Lane[L].Val = Val;
      R.Lane[L].Poison = T.mkOr(X.Lane[L].Poison, Amt.Poison);
    }
    v(I.Rd) = R;
    return;
  }
  case Op::VExtract:
    s(I.Rd) = AV(0).Lane[static_cast<size_t>(I.Imm)];
    return;
  case Op::VInsert: {
    SymVec R = AV(0);
    R.Lane[static_cast<size_t>(I.Imm)] = A(1);
    v(I.Rd) = R;
    return;
  }
  case Op::VPermute: {
    SymVec R;
    const SymVec &X = AV(0);
    const SymVec &Idx = AV(1);
    for (size_t L = 0; L < Lanes; ++L) {
      TermId Sel = T.mkBvAnd(Idx.Lane[L].Val, T.mkConst(7));
      SymVal Acc = X.Lane[0];
      for (size_t K = 1; K < Lanes; ++K) {
        TermId Hit = T.mkEq(Sel, T.mkConst(static_cast<uint32_t>(K)));
        Acc.Val = T.mkIte(Hit, X.Lane[K].Val, Acc.Val);
        Acc.Poison = T.mkBIte(Hit, X.Lane[K].Poison, Acc.Poison);
      }
      R.Lane[L].Val = Acc.Val;
      R.Lane[L].Poison = T.mkOr(Idx.Lane[L].Poison, Acc.Poison);
    }
    v(I.Rd) = R;
    return;
  }
  case Op::VHAdd: {
    const SymVec &X = AV(0);
    const SymVec &Y = AV(1);
    auto Pair = [&](const SymVec &V, size_t LO) {
      SymVal R;
      R.Val = T.mkAdd(V.Lane[LO].Val, V.Lane[LO + 1].Val);
      R.Poison = T.mkOr(V.Lane[LO].Poison, V.Lane[LO + 1].Poison);
      return R;
    };
    SymVec R;
    R.Lane[0] = Pair(X, 0);
    R.Lane[1] = Pair(X, 2);
    R.Lane[2] = Pair(Y, 0);
    R.Lane[3] = Pair(Y, 2);
    R.Lane[4] = Pair(X, 4);
    R.Lane[5] = Pair(X, 6);
    R.Lane[6] = Pair(Y, 4);
    R.Lane[7] = Pair(Y, 6);
    v(I.Rd) = R;
    return;
  }
  case Op::VLoad: {
    SymMemory &M = Mems[static_cast<size_t>(I.Imm)];
    addUB(Alive,
          T.mkOr(A(0).Poison, T.mkNot(M.inBoundsRange(A(0).Val, Lanes))));
    SymVec R;
    for (int L = 0; L < Lanes; ++L)
      R.Lane[static_cast<size_t>(L)] =
          M.read(T.mkAdd(A(0).Val, T.mkConst(static_cast<uint32_t>(L))));
    v(I.Rd) = R;
    return;
  }
  case Op::VStore: {
    SymMemory &M = Mems[static_cast<size_t>(I.Imm)];
    addUB(Alive,
          T.mkOr(A(0).Poison, T.mkNot(M.inBoundsRange(A(0).Val, Lanes))));
    const SymVec &V0 = AV(1);
    for (int L = 0; L < Lanes; ++L)
      M.write(T.mkAdd(A(0).Val, T.mkConst(static_cast<uint32_t>(L))),
              V0.Lane[static_cast<size_t>(L)], Alive);
    return;
  }
  case Op::VMaskLoad: {
    SymMemory &M = Mems[static_cast<size_t>(I.Imm)];
    const SymVec &Mask = AV(1);
    SymVec R;
    for (int L = 0; L < Lanes; ++L) {
      size_t LS = static_cast<size_t>(L);
      TermId Off = T.mkAdd(A(0).Val, T.mkConst(static_cast<uint32_t>(L)));
      TermId Active = laneMsb(Mask.Lane[LS].Val);
      addUB(Alive, T.mkOr(Mask.Lane[LS].Poison,
                          T.mkAnd(Active, T.mkOr(A(0).Poison,
                                                 T.mkNot(M.inBounds(Off))))));
      SymVal Cell = M.read(Off);
      R.Lane[LS].Val = T.mkIte(Active, Cell.Val, T.mkConst(0));
      R.Lane[LS].Poison = T.mkAnd(Active, Cell.Poison);
    }
    v(I.Rd) = R;
    return;
  }
  case Op::VMaskStore: {
    SymMemory &M = Mems[static_cast<size_t>(I.Imm)];
    const SymVec &Mask = AV(1);
    const SymVec &V0 = AV(2);
    for (int L = 0; L < Lanes; ++L) {
      size_t LS = static_cast<size_t>(L);
      TermId Off = T.mkAdd(A(0).Val, T.mkConst(static_cast<uint32_t>(L)));
      TermId Active = laneMsb(Mask.Lane[LS].Val);
      addUB(Alive, T.mkOr(Mask.Lane[LS].Poison,
                          T.mkAnd(Active, T.mkOr(A(0).Poison,
                                                 T.mkNot(M.inBounds(Off))))));
      M.write(Off, V0.Lane[LS], T.mkAnd(Alive, Active));
    }
    return;
  }
  }
}

TermId SymExec::execNode(const Node &N, TermId Alive) {
  if (!Error.empty())
    return T.mkFalse();
  switch (N.K) {
  case Node::Inst:
    execInstr(N.I, Alive);
    return Alive;
  case Node::If: {
    SymVal C = s(N.CondReg);
    addUB(Alive, C.Poison); // branching on poison is UB
    TermId CB = T.mkNe(C.Val, T.mkConst(0));
    TermId AliveT = T.mkAnd(Alive, CB);
    TermId AliveE = T.mkAnd(Alive, T.mkNot(CB));
    // Guards are disjoint, so the arms can run sequentially: each arm's
    // register effects are merged under its own guard.
    TermId OutT = execRegionGuardedMerge(N.BodyR, AliveT);
    TermId OutE = execRegionGuardedMerge(N.ElseR, AliveE);
    return T.mkOr(OutT, OutE);
  }
  case Node::For: {
    TermId L = execRegionGuardedMerge(N.Init, Alive);
    TermId ExitAccum = T.mkFalse();
    Loops.push_back(LoopCtx{T.mkFalse(), T.mkFalse()});
    size_t Depth = Loops.size() - 1;
    for (int K = 0; K < Opts.UnrollBound && Error.empty(); ++K) {
      // Each unrolled iteration builds thousands of terms; a task past
      // its deadline must stop between iterations, not after the bound.
      support::throwIfCancelled("tv.symexec");
      execRegionGuardedMerge(N.CondCalc, L);
      SymVal C = s(N.CondReg);
      addUB(L, C.Poison);
      TermId CB = T.mkNe(C.Val, T.mkConst(0));
      ExitAccum = T.mkOr(ExitAccum, T.mkAnd(L, T.mkNot(CB)));
      TermId InBody = T.mkAnd(L, CB);
      if (T.isFalse(InBody))
        break; // fully unrolled within bound
      Loops[Depth].Continued = T.mkFalse();
      TermId BodyOut = execRegionGuardedMerge(N.BodyR, InBody);
      TermId AfterBody = T.mkOr(BodyOut, Loops[Depth].Continued);
      execRegionGuardedMerge(N.StepR, AfterBody);
      L = AfterBody;
    }
    // Whatever is still alive would need more iterations: evaluate the
    // condition once more; executions that would continue are excluded by
    // assumption (bounded verification, "modulo unrolling").
    if (!T.isFalse(L)) {
      execRegionGuardedMerge(N.CondCalc, L);
      SymVal C = s(N.CondReg);
      TermId CB = T.mkNe(C.Val, T.mkConst(0));
      ExitAccum = T.mkOr(ExitAccum, T.mkAnd(L, T.mkNot(CB)));
      Assum = T.mkAnd(Assum, T.mkNot(T.mkAnd(L, CB)));
    }
    TermId Broken = Loops[Depth].Broken;
    Loops.pop_back();
    return T.mkOr(ExitAccum, Broken);
  }
  case Node::Break:
    if (Loops.empty()) {
      fail("break outside loop during symbolic execution");
      return T.mkFalse();
    }
    Loops.back().Broken = T.mkOr(Loops.back().Broken, Alive);
    return T.mkFalse();
  case Node::Continue:
    if (Loops.empty()) {
      fail("continue outside loop during symbolic execution");
      return T.mkFalse();
    }
    Loops.back().Continued = T.mkOr(Loops.back().Continued, Alive);
    return T.mkFalse();
  case Node::Ret: {
    if (N.CondReg >= 0) {
      SymVal V = s(N.CondReg);
      RetVal.Val = T.mkIte(Alive, V.Val, RetVal.Val);
      RetVal.Poison = T.mkBIte(Alive, V.Poison, RetVal.Poison);
    }
    RetCond = T.mkOr(RetCond, Alive);
    return T.mkFalse();
  }
  }
  return Alive;
}

TermId SymExec::execRegion(const Region &R, TermId Alive) {
  return execRegionFrom(R, 0, Alive);
}

TermId SymExec::execRegionFrom(const Region &R, size_t From, TermId Alive) {
  for (size_t I = From; I < R.Nodes.size(); ++I) {
    if (T.isFalse(Alive))
      return Alive;
    TermId Next = execNode(*R.Nodes[I], Alive);
    // A break/continue/return (possibly inside an if) narrowed the live
    // set: the remainder's register effects must be masked for the lanes
    // that left.
    if (Next != Alive && I + 1 < R.Nodes.size())
      return execRegionGuardedMerge(R, Next, I + 1);
    Alive = Next;
  }
  return Alive;
}

SymState SymExec::run() {
  UB = T.mkFalse();
  Assum = T.mkTrue();
  RetCond = T.mkFalse();
  RetVal = SymVal{T.mkConst(0), T.mkFalse()};

  TermId False = T.mkFalse();
  Scalars.assign(static_cast<size_t>(F.numRegs()),
                 SymVal{T.mkConst(0), False});
  SymVec ZeroVec;
  for (size_t L = 0; L < Lanes; ++L)
    ZeroVec.Lane[L] = SymVal{T.mkConst(0), False};
  Vectors.assign(static_cast<size_t>(F.numRegs()), ZeroVec);

  // Bind scalar parameters to shared input terms.
  for (const VParam &P : F.Params)
    if (!P.IsPointer)
      Scalars[static_cast<size_t>(P.Reg)] = SymVal{In.scalar(P.Name), False};

  // Build memories: parameter regions share inputs; locals are fresh.
  Mems.reserve(F.Memories.size());
  for (const RegionInfo &M : F.Memories) {
    if (M.IsParam) {
      Mems.emplace_back(T, M.Name, Opts.MemWindow, In.arraySize(M.Name),
                        In.arrayBase(M.Name, Opts.MemWindow));
    } else {
      Mems.emplace_back(T, M.Name, Opts.MemWindow, M.LocalSize);
    }
  }

  execRegion(F.Body, T.mkTrue());

  SymState Out;
  Out.Mems = std::move(Mems);
  Out.UB = UB;
  Out.Assum = Assum;
  Out.RetCond = RetCond;
  Out.RetVal = RetVal;
  Out.Error = Error;
  return Out;
}

SymState lv::tv::executeSymbolic(const VFunction &F, TermTable &T,
                                 SharedInputs &Inputs,
                                 const ExecOptions &Opts) {
  SymExec E(F, T, Inputs, Opts);
  return E.run();
}
