//===- tv/SymExec.h - symbolic execution of VIR -----------------*- C++ -*-===//
///
/// \file
/// Symbolic executor over VIR producing SMT terms, in the style of Alive2's
/// encoding of LLVM IR:
///
///  * Values carry a poison flag. C-level signed arithmetic (nsw) poisons
///    on overflow; AVX2 vector ops wrap. Branching on poison, dividing by
///    zero and out-of-bounds accesses are immediate UB.
///  * Memory regions have a *symbolic allocation size*: an access is UB
///    unless `0 <= off < size`. Distinct arrays live in distinct regions
///    (the paper's non-aliasing device), and speculative loads beyond the
///    source's footprint become refutable — the s124 counterexample sets a
///    region size the source never needs but the target dereferences.
///  * Control flow is executed with guard terms: `if` runs both arms and
///    merges with ite; loops are unrolled up to a bound with per-iteration
///    guards, and the "loop still running after the bound" condition is
///    collected as an assumption (bounded TV, the paper's "modulo loop
///    unrolling").
///
//===----------------------------------------------------------------------===//

#ifndef LV_TV_SYMEXEC_H
#define LV_TV_SYMEXEC_H

#include "smt/Term.h"
#include "vir/IR.h"

#include <array>
#include <string>
#include <unordered_map>
#include <vector>

namespace lv {
namespace tv {

/// A symbolic scalar value with poison flag.
struct SymVal {
  smt::TermId Val = smt::NoTerm;
  smt::TermId Poison = smt::NoTerm;
};

/// A symbolic 8-lane vector value.
struct SymVec {
  std::array<SymVal, vir::Lanes> Lane;
};

/// Symbolic memory for one region: base cells (fresh variables for
/// parameters, poison for locals), a guarded write log, and a symbolic
/// allocation size.
class SymMemory {
public:
  /// Parameter region backed by shared inputs (see SharedInputs below).
  SymMemory(smt::TermTable &T, const std::string &Name, int Cap,
            smt::TermId Size, std::vector<SymVal> Base);

  /// Local-array region: fixed size, poison-initialized cells.
  SymMemory(smt::TermTable &T, const std::string &Name, int Cap,
            int64_t LocalSize);

  /// Reads the cell at \p Off (no bounds check; see inBounds).
  SymVal read(smt::TermId Off) const;

  /// Writes under \p Guard.
  void write(smt::TermId Off, SymVal V, smt::TermId Guard);

  /// `0 <= off < size` (signed).
  smt::TermId inBounds(smt::TermId Off) const;

  /// `0 <= off && off + n <= size` for an n-element access.
  smt::TermId inBoundsRange(smt::TermId Off, int N) const;

  smt::TermId sizeTerm() const { return Size; }
  int capacity() const { return Cap; }
  const std::string &name() const { return Name; }

  /// Assumption constraining the symbolic size to the bounded window.
  smt::TermId sizeDomain() const;

private:
  smt::TermTable &T;
  std::string Name;
  int Cap;
  smt::TermId Size;
  std::vector<SymVal> Base;
  struct WriteRec {
    smt::TermId Off;
    SymVal V;
    smt::TermId Guard;
  };
  std::vector<WriteRec> Log;

  SymVal readBase(smt::TermId Off) const;
};

/// Options controlling symbolic execution.
struct ExecOptions {
  int UnrollBound = 18;  ///< Max iterations per loop.
  int MemWindow = 24;    ///< Bounded memory capacity per region.
};

/// Result state of symbolically executing one function.
struct SymState {
  std::vector<SymMemory> Mems;          ///< Indexed like VFunction::Memories.
  smt::TermId UB = smt::NoTerm;         ///< Immediate-UB condition.
  smt::TermId Assum = smt::NoTerm;      ///< Unroll-exhaustion assumptions.
  smt::TermId RetCond = smt::NoTerm;    ///< "Function returned a value".
  SymVal RetVal;
  std::string Error;                    ///< Non-empty on executor failure.

  bool ok() const { return Error.empty(); }
};

/// Initial-state inputs shared between the source and target executions so
/// both sides see identical parameters and memory contents.
class SharedInputs {
public:
  explicit SharedInputs(smt::TermTable &T) : T(T) {}

  /// Term for scalar parameter \p Name (created on first use).
  smt::TermId scalar(const std::string &Name);

  /// Allocation size term for array \p Name (created on first use).
  smt::TermId arraySize(const std::string &Name);

  /// Initial cells for array \p Name, grown to \p Cap entries.
  const std::vector<SymVal> &arrayBase(const std::string &Name, int Cap);

  /// All scalar names seen (for counterexample printing).
  const std::vector<std::string> &scalarNames() const { return ScalarOrder; }
  const std::vector<std::string> &arrayNames() const { return ArrayOrder; }

private:
  smt::TermTable &T;
  std::vector<std::string> ScalarOrder, ArrayOrder;
  std::unordered_map<std::string, smt::TermId> Scalars;
  std::unordered_map<std::string, smt::TermId> Sizes;
  std::unordered_map<std::string, std::vector<SymVal>> Bases;
};

/// Symbolically executes \p F against the shared initial state.
SymState executeSymbolic(const vir::VFunction &F, smt::TermTable &T,
                         SharedInputs &Inputs, const ExecOptions &Opts);

} // namespace tv
} // namespace lv

#endif // LV_TV_SYMEXEC_H
