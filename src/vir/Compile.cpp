//===- vir/Compile.cpp - source -> VIR convenience pipeline -----------------===//

#include "vir/Compile.h"

#include "minic/Parser.h"
#include "minic/Sema.h"
#include "vir/Lower.h"

using namespace lv;
using namespace lv::vir;

CompileResult lv::vir::compileFunction(const std::string &Source) {
  CompileResult R;
  minic::ParseResult P = minic::parseFunction(Source);
  if (!P.ok()) {
    R.FailedAt = CompileResult::ParseError;
    R.Error = P.Error;
    return R;
  }
  R.Ast = std::move(P.Fn);
  minic::SemaResult S = minic::checkFunction(*R.Ast);
  if (!S.ok()) {
    R.FailedAt = CompileResult::SemaError;
    R.Error = S.Error;
    return R;
  }
  LowerResult L = lowerToVIR(*R.Ast);
  if (!L.ok()) {
    R.FailedAt = CompileResult::LowerError;
    R.Error = L.Error;
    return R;
  }
  R.Fn = std::move(L.Fn);
  return R;
}
