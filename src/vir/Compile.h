//===- vir/Compile.h - source -> VIR convenience pipeline ------*- C++ -*-===//
///
/// \file
/// One-call frontend: parse mini-C source, run Sema, lower to VIR. The
/// stage that failed is reported so callers can distinguish the paper's
/// "Cannot compile" (parse/Sema) from lowering limitations.
///
//===----------------------------------------------------------------------===//

#ifndef LV_VIR_COMPILE_H
#define LV_VIR_COMPILE_H

#include "minic/AST.h"
#include "vir/IR.h"

#include <string>

namespace lv {
namespace vir {

/// Result of compiling one function from source text.
struct CompileResult {
  minic::FunctionPtr Ast; ///< Parsed AST (present iff parsing succeeded).
  VFunctionPtr Fn;        ///< Lowered function (present iff all stages OK).
  enum Stage { None, ParseError, SemaError, LowerError } FailedAt = None;
  std::string Error;

  bool ok() const { return Fn != nullptr; }
};

/// Parses, checks and lowers \p Source.
CompileResult compileFunction(const std::string &Source);

} // namespace vir
} // namespace lv

#endif // LV_VIR_COMPILE_H
