//===- vir/IR.cpp - structured vector IR utilities --------------------------===//

#include "vir/IR.h"

#include "support/Format.h"

#include <cassert>

using namespace lv;
using namespace lv::vir;

Region Region::clone() const {
  Region R;
  R.Nodes.reserve(Nodes.size());
  for (const NodePtr &N : Nodes)
    R.Nodes.push_back(N->clone());
  return R;
}

NodePtr Node::clone() const {
  auto N = std::make_unique<Node>(K);
  N->I = I;
  N->CondReg = CondReg;
  N->Init = Init.clone();
  N->CondCalc = CondCalc.clone();
  N->BodyR = BodyR.clone();
  N->ElseR = ElseR.clone();
  N->StepR = StepR.clone();
  return N;
}

const char *lv::vir::opName(Op O) {
  switch (O) {
  case Op::ConstI32: return "const";
  case Op::Copy: return "copy";
  case Op::Add: return "add";
  case Op::Sub: return "sub";
  case Op::Mul: return "mul";
  case Op::SDiv: return "sdiv";
  case Op::SRem: return "srem";
  case Op::Shl: return "shl";
  case Op::AShr: return "ashr";
  case Op::LShr: return "lshr";
  case Op::And: return "and";
  case Op::Or: return "or";
  case Op::Xor: return "xor";
  case Op::ICmp: return "icmp";
  case Op::Select: return "select";
  case Op::SAbs: return "sabs";
  case Op::SMax: return "smax";
  case Op::SMin: return "smin";
  case Op::Load: return "load";
  case Op::Store: return "store";
  case Op::VBroadcast: return "vbroadcast";
  case Op::VBuild: return "vbuild";
  case Op::VAdd: return "vadd";
  case Op::VSub: return "vsub";
  case Op::VMul: return "vmul";
  case Op::VMinS: return "vmins";
  case Op::VMaxS: return "vmaxs";
  case Op::VAnd: return "vand";
  case Op::VOr: return "vor";
  case Op::VXor: return "vxor";
  case Op::VAndNot: return "vandnot";
  case Op::VAbs: return "vabs";
  case Op::VCmpGt: return "vcmpgt";
  case Op::VCmpEq: return "vcmpeq";
  case Op::VBlend: return "vblend";
  case Op::VSelect: return "vselect";
  case Op::VShlI: return "vshli";
  case Op::VShrLI: return "vshrli";
  case Op::VShrAI: return "vshrai";
  case Op::VShlV: return "vshlv";
  case Op::VShrLV: return "vshrlv";
  case Op::VShrAV: return "vshrav";
  case Op::VExtract: return "vextract";
  case Op::VInsert: return "vinsert";
  case Op::VPermute: return "vpermute";
  case Op::VHAdd: return "vhadd";
  case Op::VLoad: return "vload";
  case Op::VStore: return "vstore";
  case Op::VMaskLoad: return "vmaskload";
  case Op::VMaskStore: return "vmaskstore";
  }
  return "?";
}

bool lv::vir::hasResult(Op O) {
  switch (O) {
  case Op::Store:
  case Op::VStore:
  case Op::VMaskStore:
    return false;
  default:
    return true;
  }
}

bool lv::vir::isVectorResult(Op O) {
  switch (O) {
  case Op::VBroadcast:
  case Op::VBuild:
  case Op::VAdd:
  case Op::VSub:
  case Op::VMul:
  case Op::VMinS:
  case Op::VMaxS:
  case Op::VAnd:
  case Op::VOr:
  case Op::VXor:
  case Op::VAndNot:
  case Op::VAbs:
  case Op::VCmpGt:
  case Op::VCmpEq:
  case Op::VBlend:
  case Op::VSelect:
  case Op::VShlI:
  case Op::VShrLI:
  case Op::VShrAI:
  case Op::VShlV:
  case Op::VShrLV:
  case Op::VShrAV:
  case Op::VInsert:
  case Op::VPermute:
  case Op::VHAdd:
  case Op::VLoad:
  case Op::VMaskLoad:
    return true;
  default:
    return false;
  }
}

static const char *predName(Pred P) {
  switch (P) {
  case Pred::EQ: return "eq";
  case Pred::NE: return "ne";
  case Pred::SLT: return "slt";
  case Pred::SLE: return "sle";
  case Pred::SGT: return "sgt";
  case Pred::SGE: return "sge";
  }
  return "?";
}

namespace {

/// IR printer with indentation.
class Printer {
public:
  explicit Printer(const VFunction &F) : F(F) {}

  std::string run();

private:
  const VFunction &F;
  std::string Out;
  int Indent = 0;

  void line(const std::string &S) {
    Out += std::string(static_cast<size_t>(Indent) * 2, ' ') + S + "\n";
  }
  std::string reg(int R) const {
    if (R < 0)
      return "<none>";
    if (R < static_cast<int>(F.RegNames.size()) && !F.RegNames[R].empty())
      return format("%%%d(%s)", R, F.RegNames[R].c_str());
    return format("%%%d", R);
  }
  void printInstr(const Instr &I);
  void printRegion(const Region &R);
  void printNode(const Node &N);
};

} // namespace

void Printer::printInstr(const Instr &I) {
  std::string S;
  if (I.Rd >= 0)
    S += reg(I.Rd) + " = ";
  S += opName(I.Opcode);
  if (I.Opcode == Op::ICmp)
    S += std::string(".") + predName(I.P);
  if (I.Nsw)
    S += " nsw";
  switch (I.Opcode) {
  case Op::ConstI32:
    S += format(" %lld", static_cast<long long>(I.Imm));
    break;
  case Op::Load:
  case Op::VLoad:
  case Op::Store:
  case Op::VStore:
  case Op::VMaskLoad:
  case Op::VMaskStore:
    S += format(" @%s", F.Memories[static_cast<size_t>(I.Imm)].Name.c_str());
    break;
  case Op::VExtract:
  case Op::VInsert:
    S += format(" lane=%lld", static_cast<long long>(I.Imm));
    break;
  default:
    break;
  }
  for (int A : I.Args)
    S += " " + reg(A);
  line(S);
}

void Printer::printNode(const Node &N) {
  switch (N.K) {
  case Node::Inst:
    printInstr(N.I);
    return;
  case Node::If:
    line("if " + reg(N.CondReg) + " {");
    ++Indent;
    printRegion(N.BodyR);
    --Indent;
    if (!N.ElseR.Nodes.empty()) {
      line("} else {");
      ++Indent;
      printRegion(N.ElseR);
      --Indent;
    }
    line("}");
    return;
  case Node::For:
    line("for {");
    ++Indent;
    line("init {");
    ++Indent;
    printRegion(N.Init);
    --Indent;
    line("}");
    line("cond -> " + reg(N.CondReg) + " {");
    ++Indent;
    printRegion(N.CondCalc);
    --Indent;
    line("}");
    line("body {");
    ++Indent;
    printRegion(N.BodyR);
    --Indent;
    line("}");
    line("step {");
    ++Indent;
    printRegion(N.StepR);
    --Indent;
    line("}");
    --Indent;
    line("}");
    return;
  case Node::Break:
    line("break");
    return;
  case Node::Continue:
    line("continue");
    return;
  case Node::Ret:
    line(N.CondReg >= 0 ? "ret " + reg(N.CondReg) : "ret");
    return;
  }
}

void Printer::printRegion(const Region &R) {
  for (const NodePtr &N : R.Nodes)
    printNode(*N);
}

std::string Printer::run() {
  std::string Header = "func @" + F.Name + "(";
  for (size_t I = 0; I < F.Params.size(); ++I) {
    if (I)
      Header += ", ";
    const VParam &P = F.Params[I];
    Header += P.IsPointer ? "ptr " : "i32 ";
    Header += P.Name;
  }
  Header += ")";
  if (F.ReturnsValue)
    Header += " -> i32";
  line(Header + " {");
  ++Indent;
  for (size_t I = 0; I < F.Memories.size(); ++I) {
    const RegionInfo &M = F.Memories[I];
    if (M.IsParam)
      line(format("memory @%s (param)", M.Name.c_str()));
    else
      line(format("memory @%s (local, %lld elems)", M.Name.c_str(),
                  static_cast<long long>(M.LocalSize)));
  }
  printRegion(F.Body);
  --Indent;
  line("}");
  return Out;
}

std::string lv::vir::printFunction(const VFunction &F) {
  Printer P(F);
  return P.run();
}

namespace {

/// Structural verifier.
class Verifier {
public:
  explicit Verifier(const VFunction &F) : F(F) {}

  std::string run() {
    checkRegion(F.Body, /*InLoop=*/false);
    return Error;
  }

private:
  const VFunction &F;
  std::string Error;

  void err(const std::string &M) { Error += M + "\n"; }

  bool regOk(int R) const { return R >= 0 && R < F.numRegs(); }

  VType typeOf(int R) const { return F.RegTypes[static_cast<size_t>(R)]; }

  void checkInstr(const Instr &I);
  void checkRegion(const Region &R, bool InLoop);
  void checkNode(const Node &N, bool InLoop);
};

} // namespace

/// Expected operand count for each opcode; -1 means variable.
static int arity(Op O) {
  switch (O) {
  case Op::ConstI32:
    return 0;
  case Op::Copy:
  case Op::SAbs:
  case Op::VBroadcast:
  case Op::VAbs:
  case Op::Load:
  case Op::VLoad:
  case Op::VExtract:
    return 1;
  case Op::VBuild:
    return Lanes;
  case Op::Select:
  case Op::VBlend:
  case Op::VSelect:
  case Op::VMaskStore:
    return 3;
  case Op::Store:
  case Op::VStore:
  case Op::VMaskLoad:
  case Op::VInsert:
    return 2;
  default:
    return 2;
  }
}

void Verifier::checkInstr(const Instr &I) {
  if (hasResult(I.Opcode)) {
    if (!regOk(I.Rd)) {
      err(format("%s: bad destination register", opName(I.Opcode)));
      return;
    }
    if (I.Opcode == Op::Copy) {
      // Copy is polymorphic: destination and source types must agree.
      if (I.Args.size() == 1 && regOk(I.Args[0]) &&
          typeOf(I.Rd) != typeOf(I.Args[0]))
        err("copy: source/destination type mismatch");
    } else {
      VType Want = isVectorResult(I.Opcode) ? VType::V8I32 : VType::I32;
      if (typeOf(I.Rd) != Want)
        err(format("%s: destination type mismatch", opName(I.Opcode)));
    }
  } else if (I.Rd != -1) {
    err(format("%s: store must not have a destination", opName(I.Opcode)));
  }
  int N = arity(I.Opcode);
  if (static_cast<int>(I.Args.size()) != N)
    err(format("%s: expected %d operands, got %zu", opName(I.Opcode), N,
               I.Args.size()));
  for (int A : I.Args)
    if (!regOk(A))
      err(format("%s: bad operand register %d", opName(I.Opcode), A));
  switch (I.Opcode) {
  case Op::Load:
  case Op::Store:
  case Op::VLoad:
  case Op::VStore:
  case Op::VMaskLoad:
  case Op::VMaskStore:
    if (I.Imm < 0 || I.Imm >= static_cast<int64_t>(F.Memories.size()))
      err(format("%s: bad memory region %lld", opName(I.Opcode),
                 static_cast<long long>(I.Imm)));
    break;
  case Op::VExtract:
  case Op::VInsert:
    if (I.Imm < 0 || I.Imm >= Lanes)
      err(format("%s: lane out of range", opName(I.Opcode)));
    break;
  default:
    break;
  }
}

void Verifier::checkNode(const Node &N, bool InLoop) {
  switch (N.K) {
  case Node::Inst:
    checkInstr(N.I);
    return;
  case Node::If:
    if (!regOk(N.CondReg) || typeOf(N.CondReg) != VType::I32)
      err("if: condition must be an i32 register");
    checkRegion(N.BodyR, InLoop);
    checkRegion(N.ElseR, InLoop);
    return;
  case Node::For:
    if (!regOk(N.CondReg) || typeOf(N.CondReg) != VType::I32)
      err("for: condition must be an i32 register");
    checkRegion(N.Init, InLoop);
    checkRegion(N.CondCalc, InLoop);
    checkRegion(N.BodyR, /*InLoop=*/true);
    checkRegion(N.StepR, InLoop);
    return;
  case Node::Break:
  case Node::Continue:
    if (!InLoop)
      err("break/continue outside of a loop");
    return;
  case Node::Ret:
    if (F.ReturnsValue) {
      if (!regOk(N.CondReg) || typeOf(N.CondReg) != VType::I32)
        err("ret: value must be an i32 register");
    } else if (N.CondReg >= 0) {
      err("ret: void function returns a value");
    }
    return;
  }
}

void Verifier::checkRegion(const Region &R, bool InLoop) {
  for (const NodePtr &N : R.Nodes)
    checkNode(*N, InLoop);
}

std::string lv::vir::verify(const VFunction &F) {
  Verifier V(F);
  return V.run();
}
