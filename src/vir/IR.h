//===- vir/IR.h - structured vector IR -------------------------*- C++ -*-===//
///
/// \file
/// The vector IR (VIR): a typed register machine with structured control
/// flow (SCF-style regions) and first-class 8xi32 vector operations. VIR
/// plays the role LLVM IR plays in the paper: Clang's lowering of AVX2
/// intrinsics corresponds to our minic->VIR lowering, and Alive2's bounded
/// translation validation corresponds to the `tv` module's symbolic
/// execution over VIR.
///
/// Design notes:
///  * Registers are mutable slots (not SSA). Structured loops re-execute
///    their body region; the interpreter and the symbolic executor both
///    keep an environment RegId -> value, merging at `if` joins.
///  * Pointers never reach VIR: lowering statically resolves every memory
///    access to a (memory region, dynamic element offset) pair, which also
///    implements the paper's non-aliasing device (each array parameter is
///    its own region).
///  * Scalar ops carry an NSW flag when they originate from C signed
///    arithmetic (overflow produces poison); vector intrinsics wrap.
///
//===----------------------------------------------------------------------===//

#ifndef LV_VIR_IR_H
#define LV_VIR_IR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lv {
namespace vir {

/// Register types. Conditions are I32 with values 0/1 (C semantics).
enum class VType : uint8_t { I32, V8I32 };

/// Number of lanes of the vector type.
inline constexpr int Lanes = 8;

/// Integer comparison predicates (signed; the subset C needs).
enum class Pred : uint8_t { EQ, NE, SLT, SLE, SGT, SGE };

/// Instruction opcodes.
enum class Op : uint8_t {
  // Scalar.
  ConstI32,  ///< rd = Imm
  Copy,      ///< rd = ra (any type)
  Add, Sub, Mul, SDiv, SRem,      ///< rd = ra op rb; Nsw => poison on ovf
  Shl, AShr, LShr, And, Or, Xor,  ///< rd = ra op rb
  ICmp,      ///< rd = ra <Pred> rb ? 1 : 0
  Select,    ///< rd = ra ? rb : rc
  SAbs,      ///< rd = |ra| (INT_MIN -> poison, nsw-style)
  SMax, SMin,///< rd = max/min(ra, rb)
  Load,      ///< rd = Region[Imm at offset ra]
  Store,     ///< Region[Imm at offset ra] = rb
  // Vector.
  VBroadcast,///< rd = splat(ra)
  VBuild,    ///< rd = lanes(ra0..ra7)
  VAdd, VSub, VMul, VMinS, VMaxS, VAnd, VOr, VXor, VAndNot, VAbs,
  VCmpGt, VCmpEq,     ///< lane masks: all-ones / all-zeros
  VBlend,    ///< rd = lanewise msb(rc) ? rb : ra  (blendv)
  VSelect,   ///< rd = ra(scalar cond) ? rb : rc   (vector select on scalar)
  VShlI, VShrLI, VShrAI, ///< rd = ra shifted by scalar rb
  VShlV, VShrLV, VShrAV, ///< rd = ra shifted lanewise by rb
  VExtract,  ///< rd = ra[Imm]
  VInsert,   ///< rd = ra with lane Imm replaced by rb
  VPermute,  ///< rd = ra permuted by index vector rb (lane idx mod 8)
  VHAdd,     ///< rd = hadd(ra, rb) per AVX2 lane interleave
  VLoad,     ///< rd = Region[Imm at offsets ra..ra+7]
  VStore,    ///< Region[Imm at offsets ra..ra+7] = rb
  VMaskLoad, ///< rd = masked load (mask rb lanes' MSB); inactive lanes 0
  VMaskStore,///< masked store of rc under mask rb at offset ra
};

/// One VIR instruction. Operand registers in Args; Region/lane constants in
/// Imm; comparison predicate in P.
struct Instr {
  Op Opcode = Op::ConstI32;
  int Rd = -1;               ///< Destination register; -1 for stores.
  std::vector<int> Args;     ///< Source registers.
  int64_t Imm = 0;           ///< Constant / region id / lane index.
  Pred P = Pred::EQ;
  bool Nsw = false;          ///< Signed-overflow produces poison.
};

struct Node;
using NodePtr = std::unique_ptr<Node>;

/// A region is an ordered list of nodes.
struct Region {
  std::vector<NodePtr> Nodes;

  Region() = default;
  Region(Region &&) = default;
  Region &operator=(Region &&) = default;

  Region clone() const;
};

/// A structured IR node: a plain instruction or a control construct.
struct Node {
  enum Kind : uint8_t {
    Inst,     ///< I
    If,       ///< if (CondReg) Then else Else
    For,      ///< Init; while (CondRegion; CondReg) { Body; Step; }
    Break,    ///< break out of the innermost For
    Continue, ///< continue the innermost For
    Ret,      ///< return CondReg (or nothing if CondReg < 0)
  };

  Kind K = Inst;
  Instr I;            ///< For Inst nodes.
  int CondReg = -1;   ///< If/For condition register; Ret value register.
  Region Init;        ///< For: runs once on entry.
  Region CondCalc;    ///< For: recomputes CondReg before each iteration.
  Region BodyR;       ///< If-then / For-body.
  Region ElseR;       ///< If-else.
  Region StepR;       ///< For: runs after each iteration.

  explicit Node(Kind K) : K(K) {}

  NodePtr clone() const;

  static NodePtr mkInst(Instr I) {
    auto N = std::make_unique<Node>(Inst);
    N->I = std::move(I);
    return N;
  }
};

/// Description of one memory region (an array parameter or local array).
struct RegionInfo {
  std::string Name;
  bool IsParam = true;     ///< False for local arrays.
  int64_t LocalSize = 0;   ///< Element count for local arrays.
};

/// A function parameter after lowering.
struct VParam {
  std::string Name;
  bool IsPointer = false;
  int Reg = -1;      ///< Scalar params: the register holding the value.
  int MemRegion = -1;///< Pointer params: the memory region id.
};

/// A lowered function.
struct VFunction {
  std::string Name;
  bool ReturnsValue = false;
  std::vector<VType> RegTypes;       ///< Indexed by register id.
  std::vector<std::string> RegNames; ///< Debug names (may be empty).
  std::vector<RegionInfo> Memories;
  std::vector<VParam> Params;
  Region Body;

  int numRegs() const { return static_cast<int>(RegTypes.size()); }

  /// Allocates a fresh register of type \p Ty.
  int newReg(VType Ty, std::string Name = std::string()) {
    RegTypes.push_back(Ty);
    RegNames.push_back(std::move(Name));
    return numRegs() - 1;
  }
};

using VFunctionPtr = std::unique_ptr<VFunction>;

/// Human-readable IR dump (for tests and debugging).
std::string printFunction(const VFunction &F);

/// Structural well-formedness check; returns diagnostics ("" when OK).
std::string verify(const VFunction &F);

/// Instruction properties.
bool isVectorResult(Op O);
bool hasResult(Op O);
const char *opName(Op O);

} // namespace vir
} // namespace lv

#endif // LV_VIR_IR_H
