//===- vir/Lower.cpp - mini-C AST -> VIR lowering ---------------------------===//

#include "vir/Lower.h"

#include "minic/GotoElim.h"
#include "minic/Intrinsics.h"
#include "minic/Sema.h"
#include "support/Format.h"

#include <cassert>
#include <unordered_map>
#include <vector>

using namespace lv;
using namespace lv::vir;
using minic::BinOp;
using minic::Expr;
using minic::IntrinInfo;
using minic::IntrinOp;
using minic::Stmt;
using minic::UnOp;

namespace {

/// A pointer value tracked statically during lowering: which memory region
/// it points into, a register holding the element offset (in i32 units),
/// and whether it is an __m256i pointer (scaling pointer arithmetic by 8).
struct PtrVal {
  int MemRegion = -1;
  int OffsetReg = -1;
  bool IsVec = false;
};

/// What a name (or expression) lowers to.
struct LVal {
  enum Kind { ScalarReg, VectorReg, Pointer } K = ScalarReg;
  int Reg = -1; ///< ScalarReg/VectorReg.
  PtrVal Ptr;   ///< Pointer.
};

/// The lowering driver.
class Lowerer {
public:
  explicit Lowerer(const minic::Function &Src) : Src(Src) {}

  LowerResult run();

private:
  const minic::Function &Src;
  VFunctionPtr Fn;
  std::string Error;
  std::vector<std::unordered_map<std::string, LVal>> Scopes;
  std::vector<Region *> RegionStack;

  void err(const std::string &M) {
    if (Error.empty())
      Error = M;
  }
  bool failed() const { return !Error.empty(); }

  Region &cur() { return *RegionStack.back(); }

  void emit(Instr I) { cur().Nodes.push_back(Node::mkInst(std::move(I))); }

  int emitOp(Op O, std::vector<int> Args, int64_t Imm = 0,
             bool Nsw = false) {
    VType Ty = isVectorResult(O) ? VType::V8I32 : VType::I32;
    int Rd = Fn->newReg(Ty);
    Instr I;
    I.Opcode = O;
    I.Rd = Rd;
    I.Args = std::move(Args);
    I.Imm = Imm;
    I.Nsw = Nsw;
    emit(std::move(I));
    return Rd;
  }

  int emitConst(int64_t V) { return emitOp(Op::ConstI32, {}, V); }

  int emitICmp(Pred P, int A, int B) {
    int Rd = Fn->newReg(VType::I32);
    Instr I;
    I.Opcode = Op::ICmp;
    I.Rd = Rd;
    I.Args = {A, B};
    I.P = P;
    emit(std::move(I));
    return Rd;
  }

  void emitCopy(int Rd, int Rs) {
    Instr I;
    I.Opcode = Op::Copy;
    I.Rd = Rd;
    I.Args = {Rs};
    emit(std::move(I));
  }

  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }

  void define(const std::string &Name, LVal V) { Scopes.back()[Name] = V; }

  LVal *lookup(const std::string &Name) {
    for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
      auto F = It->find(Name);
      if (F != It->end())
        return &F->second;
    }
    return nullptr;
  }

  /// Lowers an expression used as a pointer; returns false on failure.
  bool lowerPointer(const Expr &E, PtrVal &Out);

  /// Lowers an rvalue; returns the register (type per E.Ty), or -1.
  int lowerExpr(const Expr &E);

  /// Lowers an assignment target and stores \p ValueReg into it.
  void lowerStoreTo(const Expr &Target, int ValueReg);

  /// Reads the current value of an assignable expression.
  int lowerReadOf(const Expr &Target);

  int lowerIntrinsic(const Expr &E);
  int lowerBinary(const Expr &E);
  int lowerShortCircuit(const Expr &E);
  int lowerTernary(const Expr &E);

  void lowerStmt(const Stmt &S);
  void lowerDecl(const Stmt &S);
  void lowerList(const std::vector<minic::StmtPtr> &L);
};

} // namespace

bool Lowerer::lowerPointer(const Expr &E, PtrVal &Out) {
  switch (E.K) {
  case Expr::VarRef: {
    LVal *V = lookup(E.Name);
    if (!V || V->K != LVal::Pointer) {
      err(format("'%s' is not a pointer", E.Name.c_str()));
      return false;
    }
    Out = V->Ptr;
    return true;
  }
  case Expr::Cast:
    // Pointer-to-pointer casts reinterpret: (__m256i*)&a[i] keeps the same
    // region/offset but flips the element scale.
    if (!lowerPointer(*E.Kids[0], Out))
      return false;
    Out.IsVec = E.CastTy.K == minic::Type::VecPtr;
    return true;
  case Expr::Unary:
    if (E.UOp == UnOp::AddrOf) {
      const Expr &Place = *E.Kids[0];
      if (Place.K == Expr::Index) {
        PtrVal Base;
        if (!lowerPointer(*Place.Kids[0], Base))
          return false;
        int Idx = lowerExpr(*Place.Kids[1]);
        if (Idx < 0)
          return false;
        int Scaled = Idx;
        if (Base.IsVec) {
          int Eight = emitConst(Lanes);
          Scaled = emitOp(Op::Mul, {Idx, Eight});
        }
        Out.MemRegion = Base.MemRegion;
        Out.OffsetReg = emitOp(Op::Add, {Base.OffsetReg, Scaled});
        Out.IsVec = Base.IsVec;
        return true;
      }
      if (Place.K == Expr::VarRef) {
        // &p where p itself is a pointer-typed variable is not needed;
        // &scalar is unsupported (no address-taken scalars in the subset).
        err("address-of a scalar variable is not supported");
        return false;
      }
      err("unsupported address-of expression");
      return false;
    }
    err("unsupported pointer expression");
    return false;
  case Expr::Binary: {
    // p + k / p - k / k + p.
    const Expr *PtrSide = nullptr;
    const Expr *IntSide = nullptr;
    if (E.Kids[0]->Ty.isPointer()) {
      PtrSide = E.Kids[0].get();
      IntSide = E.Kids[1].get();
    } else if (E.Kids[1]->Ty.isPointer()) {
      PtrSide = E.Kids[1].get();
      IntSide = E.Kids[0].get();
    }
    if (!PtrSide || (E.BOp != BinOp::Add && E.BOp != BinOp::Sub)) {
      err("unsupported pointer arithmetic");
      return false;
    }
    PtrVal Base;
    if (!lowerPointer(*PtrSide, Base))
      return false;
    int K = lowerExpr(*IntSide);
    if (K < 0)
      return false;
    if (Base.IsVec) {
      int Eight = emitConst(Lanes);
      K = emitOp(Op::Mul, {K, Eight});
    }
    Out.MemRegion = Base.MemRegion;
    Out.OffsetReg = emitOp(E.BOp == BinOp::Add ? Op::Add : Op::Sub,
                           {Base.OffsetReg, K});
    Out.IsVec = Base.IsVec;
    return true;
  }
  default:
    err("unsupported pointer expression");
    return false;
  }
}

int Lowerer::lowerReadOf(const Expr &Target) {
  switch (Target.K) {
  case Expr::VarRef: {
    LVal *V = lookup(Target.Name);
    if (!V) {
      err(format("use of undeclared '%s'", Target.Name.c_str()));
      return -1;
    }
    if (V->K == LVal::Pointer) {
      err("reading a pointer as a value is not supported");
      return -1;
    }
    return V->Reg;
  }
  case Expr::Index: {
    PtrVal Base;
    if (!lowerPointer(*Target.Kids[0], Base))
      return -1;
    int Idx = lowerExpr(*Target.Kids[1]);
    if (Idx < 0)
      return -1;
    if (Base.IsVec) {
      int Eight = emitConst(Lanes);
      Idx = emitOp(Op::Mul, {Idx, Eight});
    }
    int Off = emitOp(Op::Add, {Base.OffsetReg, Idx});
    return emitOp(Base.IsVec ? Op::VLoad : Op::Load, {Off}, Base.MemRegion);
  }
  case Expr::Unary:
    if (Target.UOp == UnOp::Deref) {
      PtrVal P;
      if (!lowerPointer(*Target.Kids[0], P))
        return -1;
      return emitOp(P.IsVec ? Op::VLoad : Op::Load, {P.OffsetReg},
                    P.MemRegion);
    }
    [[fallthrough]];
  default:
    err("expression is not readable as an lvalue");
    return -1;
  }
}

void Lowerer::lowerStoreTo(const Expr &Target, int ValueReg) {
  switch (Target.K) {
  case Expr::VarRef: {
    LVal *V = lookup(Target.Name);
    if (!V) {
      err(format("use of undeclared '%s'", Target.Name.c_str()));
      return;
    }
    if (V->K == LVal::Pointer) {
      err("pointer reassignment is not supported");
      return;
    }
    emitCopy(V->Reg, ValueReg);
    return;
  }
  case Expr::Index: {
    PtrVal Base;
    if (!lowerPointer(*Target.Kids[0], Base))
      return;
    int Idx = lowerExpr(*Target.Kids[1]);
    if (Idx < 0)
      return;
    if (Base.IsVec) {
      int Eight = emitConst(Lanes);
      Idx = emitOp(Op::Mul, {Idx, Eight});
    }
    int Off = emitOp(Op::Add, {Base.OffsetReg, Idx});
    Instr I;
    I.Opcode = Base.IsVec ? Op::VStore : Op::Store;
    I.Imm = Base.MemRegion;
    I.Args = {Off, ValueReg};
    emit(std::move(I));
    return;
  }
  case Expr::Unary:
    if (Target.UOp == UnOp::Deref) {
      PtrVal P;
      if (!lowerPointer(*Target.Kids[0], P))
        return;
      Instr I;
      I.Opcode = P.IsVec ? Op::VStore : Op::Store;
      I.Imm = P.MemRegion;
      I.Args = {P.OffsetReg, ValueReg};
      emit(std::move(I));
      return;
    }
    [[fallthrough]];
  default:
    err("expression is not assignable");
  }
}

int Lowerer::lowerIntrinsic(const Expr &E) {
  const IntrinInfo &Info = minic::lookupIntrinsic(E.Name);
  assert(Info.Op != IntrinOp::None && "Sema lets only known calls through");

  auto vectorBin = [&](Op O) -> int {
    int A = lowerExpr(*E.Kids[0]);
    int B = lowerExpr(*E.Kids[1]);
    if (A < 0 || B < 0)
      return -1;
    return emitOp(O, {A, B});
  };

  switch (Info.Op) {
  case IntrinOp::LoadU: {
    PtrVal P;
    if (!lowerPointer(*E.Kids[0], P))
      return -1;
    return emitOp(Op::VLoad, {P.OffsetReg}, P.MemRegion);
  }
  case IntrinOp::StoreU: {
    PtrVal P;
    if (!lowerPointer(*E.Kids[0], P))
      return -1;
    int V = lowerExpr(*E.Kids[1]);
    if (V < 0)
      return -1;
    Instr I;
    I.Opcode = Op::VStore;
    I.Imm = P.MemRegion;
    I.Args = {P.OffsetReg, V};
    emit(std::move(I));
    return -2; // void
  }
  case IntrinOp::MaskLoad: {
    PtrVal P;
    if (!lowerPointer(*E.Kids[0], P))
      return -1;
    int M = lowerExpr(*E.Kids[1]);
    if (M < 0)
      return -1;
    return emitOp(Op::VMaskLoad, {P.OffsetReg, M}, P.MemRegion);
  }
  case IntrinOp::MaskStore: {
    PtrVal P;
    if (!lowerPointer(*E.Kids[0], P))
      return -1;
    int M = lowerExpr(*E.Kids[1]);
    int V = lowerExpr(*E.Kids[2]);
    if (M < 0 || V < 0)
      return -1;
    Instr I;
    I.Opcode = Op::VMaskStore;
    I.Imm = P.MemRegion;
    I.Args = {P.OffsetReg, M, V};
    emit(std::move(I));
    return -2;
  }
  case IntrinOp::Add: return vectorBin(Op::VAdd);
  case IntrinOp::Sub: return vectorBin(Op::VSub);
  case IntrinOp::MulLo: return vectorBin(Op::VMul);
  case IntrinOp::MinS: return vectorBin(Op::VMinS);
  case IntrinOp::MaxS: return vectorBin(Op::VMaxS);
  case IntrinOp::AndV: return vectorBin(Op::VAnd);
  case IntrinOp::OrV: return vectorBin(Op::VOr);
  case IntrinOp::XorV: return vectorBin(Op::VXor);
  case IntrinOp::AndNot: return vectorBin(Op::VAndNot);
  case IntrinOp::CmpGt: return vectorBin(Op::VCmpGt);
  case IntrinOp::CmpEq: return vectorBin(Op::VCmpEq);
  case IntrinOp::ShlV: return vectorBin(Op::VShlV);
  case IntrinOp::ShrLV: return vectorBin(Op::VShrLV);
  case IntrinOp::ShrAV: return vectorBin(Op::VShrAV);
  case IntrinOp::PermuteVar: return vectorBin(Op::VPermute);
  case IntrinOp::HAdd: return vectorBin(Op::VHAdd);
  case IntrinOp::AbsV: {
    int A = lowerExpr(*E.Kids[0]);
    return A < 0 ? -1 : emitOp(Op::VAbs, {A});
  }
  case IntrinOp::Set1: {
    int A = lowerExpr(*E.Kids[0]);
    return A < 0 ? -1 : emitOp(Op::VBroadcast, {A});
  }
  case IntrinOp::SetZero: {
    int Z = emitConst(0);
    return emitOp(Op::VBroadcast, {Z});
  }
  case IntrinOp::SetR:
  case IntrinOp::Set: {
    std::vector<int> LanesArgs(Lanes, -1);
    for (int I = 0; I < Lanes; ++I) {
      int A = lowerExpr(*E.Kids[static_cast<size_t>(I)]);
      if (A < 0)
        return -1;
      // setr: arg i -> lane i; set: arg i -> lane 7-i.
      int Lane = Info.Op == IntrinOp::SetR ? I : Lanes - 1 - I;
      LanesArgs[static_cast<size_t>(Lane)] = A;
    }
    return emitOp(Op::VBuild, std::move(LanesArgs));
  }
  case IntrinOp::BlendV: {
    int A = lowerExpr(*E.Kids[0]);
    int B = lowerExpr(*E.Kids[1]);
    int M = lowerExpr(*E.Kids[2]);
    if (A < 0 || B < 0 || M < 0)
      return -1;
    return emitOp(Op::VBlend, {A, B, M});
  }
  case IntrinOp::ShlI:
  case IntrinOp::ShrLI:
  case IntrinOp::ShrAI: {
    int V = lowerExpr(*E.Kids[0]);
    int S = lowerExpr(*E.Kids[1]);
    if (V < 0 || S < 0)
      return -1;
    Op O = Info.Op == IntrinOp::ShlI
               ? Op::VShlI
               : (Info.Op == IntrinOp::ShrLI ? Op::VShrLI : Op::VShrAI);
    return emitOp(O, {V, S});
  }
  case IntrinOp::Extract: {
    int V = lowerExpr(*E.Kids[0]);
    if (V < 0)
      return -1;
    const Expr &LaneE = *E.Kids[1];
    if (LaneE.K != Expr::IntLit || LaneE.Value < 0 || LaneE.Value >= Lanes) {
      err("_mm256_extract_epi32 requires a constant lane in [0,8)");
      return -1;
    }
    return emitOp(Op::VExtract, {V}, LaneE.Value);
  }
  case IntrinOp::ScalarAbs: {
    int A = lowerExpr(*E.Kids[0]);
    return A < 0 ? -1 : emitOp(Op::SAbs, {A});
  }
  case IntrinOp::ScalarMax: {
    int A = lowerExpr(*E.Kids[0]);
    int B = lowerExpr(*E.Kids[1]);
    return (A < 0 || B < 0) ? -1 : emitOp(Op::SMax, {A, B});
  }
  case IntrinOp::ScalarMin: {
    int A = lowerExpr(*E.Kids[0]);
    int B = lowerExpr(*E.Kids[1]);
    return (A < 0 || B < 0) ? -1 : emitOp(Op::SMin, {A, B});
  }
  case IntrinOp::None:
    break;
  }
  err(format("cannot lower call to '%s'", E.Name.c_str()));
  return -1;
}

int Lowerer::lowerShortCircuit(const Expr &E) {
  // res = 0; if (lhs) res = rhs != 0;          (&&)
  // res = 1; if (lhs) {} else res = rhs != 0;  (||)
  bool IsAnd = E.BOp == BinOp::LAnd;
  int Res = Fn->newReg(VType::I32);
  int Init = emitConst(IsAnd ? 0 : 1);
  emitCopy(Res, Init);
  int L = lowerExpr(*E.Kids[0]);
  if (L < 0)
    return -1;
  auto IfN = std::make_unique<Node>(Node::If);
  IfN->CondReg = L;
  Region *Target = IsAnd ? &IfN->BodyR : &IfN->ElseR;
  RegionStack.push_back(Target);
  int R = lowerExpr(*E.Kids[1]);
  if (R < 0) {
    RegionStack.pop_back();
    return -1;
  }
  int Zero = emitConst(0);
  int Bool = emitICmp(Pred::NE, R, Zero);
  emitCopy(Res, Bool);
  RegionStack.pop_back();
  cur().Nodes.push_back(std::move(IfN));
  return Res;
}

int Lowerer::lowerTernary(const Expr &E) {
  int C = lowerExpr(*E.Kids[0]);
  if (C < 0)
    return -1;
  VType Ty = E.Ty.K == minic::Type::M256i ? VType::V8I32 : VType::I32;
  int Res = Fn->newReg(Ty);
  auto IfN = std::make_unique<Node>(Node::If);
  IfN->CondReg = C;
  RegionStack.push_back(&IfN->BodyR);
  int T = lowerExpr(*E.Kids[1]);
  if (T >= 0)
    emitCopy(Res, T);
  RegionStack.pop_back();
  RegionStack.push_back(&IfN->ElseR);
  int F = lowerExpr(*E.Kids[2]);
  if (F >= 0)
    emitCopy(Res, F);
  RegionStack.pop_back();
  if (T < 0 || F < 0)
    return -1;
  cur().Nodes.push_back(std::move(IfN));
  return Res;
}

int Lowerer::lowerBinary(const Expr &E) {
  if (E.BOp == BinOp::LAnd || E.BOp == BinOp::LOr)
    return lowerShortCircuit(E);
  if (E.BOp == BinOp::Comma) {
    lowerExpr(*E.Kids[0]);
    return lowerExpr(*E.Kids[1]);
  }
  int A = lowerExpr(*E.Kids[0]);
  int B = lowerExpr(*E.Kids[1]);
  if (A < 0 || B < 0)
    return -1;
  switch (E.BOp) {
  case BinOp::Add: return emitOp(Op::Add, {A, B}, 0, /*Nsw=*/true);
  case BinOp::Sub: return emitOp(Op::Sub, {A, B}, 0, /*Nsw=*/true);
  case BinOp::Mul: return emitOp(Op::Mul, {A, B}, 0, /*Nsw=*/true);
  case BinOp::Div: return emitOp(Op::SDiv, {A, B});
  case BinOp::Rem: return emitOp(Op::SRem, {A, B});
  case BinOp::Shl: return emitOp(Op::Shl, {A, B});
  case BinOp::Shr: return emitOp(Op::AShr, {A, B});
  case BinOp::And: return emitOp(Op::And, {A, B});
  case BinOp::Or: return emitOp(Op::Or, {A, B});
  case BinOp::Xor: return emitOp(Op::Xor, {A, B});
  case BinOp::Lt: return emitICmp(Pred::SLT, A, B);
  case BinOp::Gt: return emitICmp(Pred::SGT, A, B);
  case BinOp::Le: return emitICmp(Pred::SLE, A, B);
  case BinOp::Ge: return emitICmp(Pred::SGE, A, B);
  case BinOp::Eq: return emitICmp(Pred::EQ, A, B);
  case BinOp::Ne: return emitICmp(Pred::NE, A, B);
  case BinOp::LAnd:
  case BinOp::LOr:
  case BinOp::Comma:
    break;
  }
  err("unhandled binary operator");
  return -1;
}

int Lowerer::lowerExpr(const Expr &E) {
  if (failed())
    return -1;
  switch (E.K) {
  case Expr::IntLit:
    return emitConst(E.Value);
  case Expr::VarRef:
  case Expr::Index:
    return lowerReadOf(E);
  case Expr::Unary: {
    switch (E.UOp) {
    case UnOp::Neg: {
      int A = lowerExpr(*E.Kids[0]);
      if (A < 0)
        return -1;
      int Zero = emitConst(0);
      return emitOp(Op::Sub, {Zero, A}, 0, /*Nsw=*/true);
    }
    case UnOp::LNot: {
      int A = lowerExpr(*E.Kids[0]);
      if (A < 0)
        return -1;
      int Zero = emitConst(0);
      return emitICmp(Pred::EQ, A, Zero);
    }
    case UnOp::BNot: {
      int A = lowerExpr(*E.Kids[0]);
      if (A < 0)
        return -1;
      int AllOnes = emitConst(-1);
      return emitOp(Op::Xor, {A, AllOnes});
    }
    case UnOp::PreInc:
    case UnOp::PreDec:
    case UnOp::PostInc:
    case UnOp::PostDec: {
      const Expr &Place = *E.Kids[0];
      int Old = lowerReadOf(Place);
      if (Old < 0)
        return -1;
      int One = emitConst(1);
      bool IsInc = E.UOp == UnOp::PreInc || E.UOp == UnOp::PostInc;
      int New = emitOp(IsInc ? Op::Add : Op::Sub, {Old, One}, 0,
                       /*Nsw=*/true);
      lowerStoreTo(Place, New);
      bool IsPre = E.UOp == UnOp::PreInc || E.UOp == UnOp::PreDec;
      return IsPre ? New : Old;
    }
    case UnOp::Deref:
      return lowerReadOf(E);
    case UnOp::AddrOf:
      err("address-of only allowed in pointer contexts");
      return -1;
    }
    return -1;
  }
  case Expr::Binary:
    return lowerBinary(E);
  case Expr::Assign: {
    int RHS;
    if (E.IsPlainAssign) {
      RHS = lowerExpr(*E.Kids[1]);
    } else {
      int Old = lowerReadOf(*E.Kids[0]);
      int Val = lowerExpr(*E.Kids[1]);
      if (Old < 0 || Val < 0)
        return -1;
      switch (E.BOp) {
      case BinOp::Add: RHS = emitOp(Op::Add, {Old, Val}, 0, true); break;
      case BinOp::Sub: RHS = emitOp(Op::Sub, {Old, Val}, 0, true); break;
      case BinOp::Mul: RHS = emitOp(Op::Mul, {Old, Val}, 0, true); break;
      case BinOp::Div: RHS = emitOp(Op::SDiv, {Old, Val}); break;
      case BinOp::Rem: RHS = emitOp(Op::SRem, {Old, Val}); break;
      case BinOp::Shl: RHS = emitOp(Op::Shl, {Old, Val}); break;
      case BinOp::Shr: RHS = emitOp(Op::AShr, {Old, Val}); break;
      case BinOp::And: RHS = emitOp(Op::And, {Old, Val}); break;
      case BinOp::Or: RHS = emitOp(Op::Or, {Old, Val}); break;
      case BinOp::Xor: RHS = emitOp(Op::Xor, {Old, Val}); break;
      default:
        err("unsupported compound assignment");
        return -1;
      }
    }
    if (RHS < 0)
      return -1;
    lowerStoreTo(*E.Kids[0], RHS);
    return RHS;
  }
  case Expr::Ternary:
    return lowerTernary(E);
  case Expr::Call: {
    int R = lowerIntrinsic(E);
    return R == -2 ? -2 : R;
  }
  case Expr::Cast:
    if (E.CastTy.K == minic::Type::Int)
      return lowerExpr(*E.Kids[0]);
    err("value cast to non-int type");
    return -1;
  }
  return -1;
}

void Lowerer::lowerDecl(const Stmt &S) {
  for (const minic::Declarator &D : S.Decls) {
    if (D.ArraySize >= 0) {
      RegionInfo RI;
      RI.Name = D.Name;
      RI.IsParam = false;
      RI.LocalSize = D.ArraySize;
      Fn->Memories.push_back(RI);
      LVal V;
      V.K = LVal::Pointer;
      V.Ptr.MemRegion = static_cast<int>(Fn->Memories.size()) - 1;
      V.Ptr.OffsetReg = emitConst(0);
      V.Ptr.IsVec = S.DeclTy.K == minic::Type::M256i;
      define(D.Name, V);
      continue;
    }
    if (S.DeclTy.isPointer()) {
      if (!D.Init) {
        err(format("pointer '%s' must be initialized at declaration",
                   D.Name.c_str()));
        return;
      }
      PtrVal P;
      if (!lowerPointer(*D.Init, P))
        return;
      LVal V;
      V.K = LVal::Pointer;
      V.Ptr = P;
      define(D.Name, V);
      continue;
    }
    VType Ty =
        S.DeclTy.K == minic::Type::M256i ? VType::V8I32 : VType::I32;
    int Reg = Fn->newReg(Ty, D.Name);
    LVal V;
    V.K = Ty == VType::V8I32 ? LVal::VectorReg : LVal::ScalarReg;
    V.Reg = Reg;
    define(D.Name, V);
    if (D.Init) {
      int Init = lowerExpr(*D.Init);
      if (Init < 0)
        return;
      emitCopy(Reg, Init);
    }
  }
}

void Lowerer::lowerList(const std::vector<minic::StmtPtr> &L) {
  for (const minic::StmtPtr &S : L) {
    if (failed())
      return;
    lowerStmt(*S);
  }
}

void Lowerer::lowerStmt(const Stmt &S) {
  switch (S.K) {
  case Stmt::Decl:
    lowerDecl(S);
    return;
  case Stmt::ExprSt:
    lowerExpr(*S.Cond);
    return;
  case Stmt::Block:
    pushScope();
    lowerList(S.Body);
    popScope();
    return;
  case Stmt::If: {
    int C = lowerExpr(*S.Cond);
    if (C < 0)
      return;
    auto IfN = std::make_unique<Node>(Node::If);
    IfN->CondReg = C;
    if (S.thenArm()) {
      pushScope();
      RegionStack.push_back(&IfN->BodyR);
      lowerStmt(*S.Body[0]);
      RegionStack.pop_back();
      popScope();
    }
    if (S.elseArm()) {
      pushScope();
      RegionStack.push_back(&IfN->ElseR);
      lowerStmt(*S.Body[1]);
      RegionStack.pop_back();
      popScope();
    }
    cur().Nodes.push_back(std::move(IfN));
    return;
  }
  case Stmt::For: {
    pushScope();
    auto ForN = std::make_unique<Node>(Node::For);
    Node *ForPtr = ForN.get();
    // Init region.
    RegionStack.push_back(&ForPtr->Init);
    if (S.InitStmt && S.InitStmt->K != Stmt::Empty)
      lowerStmt(*S.InitStmt);
    RegionStack.pop_back();
    // Condition region.
    RegionStack.push_back(&ForPtr->CondCalc);
    int CondReg;
    if (S.Cond) {
      CondReg = lowerExpr(*S.Cond);
    } else {
      CondReg = emitConst(1);
    }
    RegionStack.pop_back();
    if (CondReg < 0) {
      popScope();
      return;
    }
    ForPtr->CondReg = CondReg;
    // Body.
    RegionStack.push_back(&ForPtr->BodyR);
    if (S.forBody()) {
      pushScope();
      lowerStmt(*S.Body[0]);
      popScope();
    }
    RegionStack.pop_back();
    // Step.
    RegionStack.push_back(&ForPtr->StepR);
    if (S.StepExpr)
      lowerExpr(*S.StepExpr);
    RegionStack.pop_back();
    popScope();
    cur().Nodes.push_back(std::move(ForN));
    return;
  }
  case Stmt::Goto:
  case Stmt::Label:
    err("internal: goto/label survived elimination");
    return;
  case Stmt::Break:
    cur().Nodes.push_back(std::make_unique<Node>(Node::Break));
    return;
  case Stmt::Continue:
    cur().Nodes.push_back(std::make_unique<Node>(Node::Continue));
    return;
  case Stmt::Return: {
    auto RetN = std::make_unique<Node>(Node::Ret);
    if (S.Cond) {
      int V = lowerExpr(*S.Cond);
      if (V < 0)
        return;
      RetN->CondReg = V;
    }
    cur().Nodes.push_back(std::move(RetN));
    return;
  }
  case Stmt::Empty:
    return;
  }
}

LowerResult Lowerer::run() {
  LowerResult Result;

  // Work on a goto-free, type-annotated clone.
  minic::FunctionPtr Clone = Src.clone();
  std::string GErr = minic::eliminateGotos(*Clone);
  if (!GErr.empty()) {
    Result.Error = GErr;
    return Result;
  }
  minic::SemaResult SR = minic::checkFunction(*Clone);
  if (!SR.ok()) {
    Result.Error = SR.Error;
    return Result;
  }

  Fn = std::make_unique<VFunction>();
  Fn->Name = Clone->Name;
  Fn->ReturnsValue = Clone->RetTy.K == minic::Type::Int;

  pushScope();
  for (const minic::Param &P : Clone->Params) {
    VParam VP;
    VP.Name = P.Name;
    if (P.Ty.isPointer()) {
      VP.IsPointer = true;
      RegionInfo RI;
      RI.Name = P.Name;
      RI.IsParam = true;
      Fn->Memories.push_back(RI);
      VP.MemRegion = static_cast<int>(Fn->Memories.size()) - 1;
    } else {
      VP.Reg = Fn->newReg(VType::I32, P.Name);
    }
    Fn->Params.push_back(VP);
  }

  RegionStack.push_back(&Fn->Body);
  // Pointer parameters need an offset register holding zero; emit those
  // after entering the body region.
  for (size_t I = 0; I < Fn->Params.size(); ++I) {
    VParam &VP = Fn->Params[I];
    if (!VP.IsPointer) {
      LVal V;
      V.K = LVal::ScalarReg;
      V.Reg = VP.Reg;
      define(VP.Name, V);
      continue;
    }
    LVal V;
    V.K = LVal::Pointer;
    V.Ptr.MemRegion = VP.MemRegion;
    V.Ptr.OffsetReg = emitConst(0);
    V.Ptr.IsVec = false;
    define(VP.Name, V);
  }

  if (Clone->BodyBlock)
    lowerList(Clone->BodyBlock->Body);
  RegionStack.pop_back();
  popScope();

  if (failed()) {
    Result.Error = Error;
    return Result;
  }
  std::string VErr = verify(*Fn);
  if (!VErr.empty()) {
    Result.Error = "IR verifier: " + VErr;
    return Result;
  }
  Result.Fn = std::move(Fn);
  return Result;
}

LowerResult lv::vir::lowerToVIR(const minic::Function &F) {
  Lowerer L(F);
  return L.run();
}
