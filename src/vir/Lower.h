//===- vir/Lower.h - mini-C AST -> VIR lowering ----------------*- C++ -*-===//
///
/// \file
/// Lowers a type-checked mini-C function to VIR. This is the project's
/// counterpart of Clang emitting LLVM IR: AVX2 intrinsics become first-class
/// vector instructions, pointers are statically resolved to (memory region,
/// element offset) pairs — which also realizes the paper's non-aliasing
/// assumption (each array parameter lives in its own region) — and forward
/// gotos are eliminated first.
///
/// Short-circuit (&&, ||) and ternary expressions lower to structured `if`
/// nodes, preserving C's conditional-evaluation semantics; this matters for
/// the UB model (a guarded load must not execute when its guard is false).
///
//===----------------------------------------------------------------------===//

#ifndef LV_VIR_LOWER_H
#define LV_VIR_LOWER_H

#include "minic/AST.h"
#include "vir/IR.h"

#include <string>

namespace lv {
namespace vir {

/// Result of lowering.
struct LowerResult {
  VFunctionPtr Fn;   ///< Null on failure.
  std::string Error; ///< Diagnostics.

  bool ok() const { return Fn != nullptr; }
};

/// Lowers \p F (which must already have passed Sema). The input is cloned;
/// \p F is not modified.
LowerResult lowerToVIR(const minic::Function &F);

} // namespace vir
} // namespace lv

#endif // LV_VIR_LOWER_H
