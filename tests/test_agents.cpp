//===- tests/test_agents.cpp - multi-agent FSM tests ---------------------------===//
//
// The FSM must reproduce the paper's §4.4 behaviors: single-invocation
// success on easy kernels, repair of the s453 induction bug through
// checksum feedback within the 10-attempt budget, and graceful failure on
// never-vectorizable kernels.
//
//===----------------------------------------------------------------------===//

#include "agents/Fsm.h"
#include "minic/Sema.h"
#include "support/Rng.h"
#include "compilers/Baselines.h"
#include "minic/Parser.h"
#include "minic/Printer.h"
#include "tsvc/Suite.h"

#include <gtest/gtest.h>

using namespace lv;
using namespace lv::agents;

namespace {

const char *S453 = R"(
void s453(int *a, int *b, int n) {
  int s = 0;
  for (int i = 0; i < n; i++) {
    s += 2;
    a[i] = s * b[i];
  }
})";

TEST(Fsm, EasyKernelSucceedsQuickly) {
  llm::SimulatedLLM M(1001);
  FsmConfig Cfg;
  MultiAgentFsm Fsm(M, Cfg);
  FsmResult R = Fsm.run(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }");
  EXPECT_TRUE(R.Plausible);
  EXPECT_LE(R.Attempts, 3);
  EXPECT_NE(R.FinalCandidate.find("_mm256_"), std::string::npos);
  ASSERT_GE(R.Transitions.size(), 3u);
  EXPECT_EQ(R.Transitions.front(), State::Init);
  EXPECT_EQ(R.Transitions.back(), State::Done);
}

TEST(Fsm, RepairsWithinBudget) {
  // Across seeds, s453 must be repaired within the 10-attempt budget
  // whenever the first attempt fails: the feedback loop suppresses the
  // wrong-induction fault (the paper's two-attempt repair).
  int Succ = 0, MultiAttempt = 0;
  for (uint64_t Seed = 0; Seed < 12; ++Seed) {
    llm::SimulatedLLM M(Seed * 77 + 5);
    FsmConfig Cfg;
    MultiAgentFsm Fsm(M, Cfg);
    FsmResult R = Fsm.run(S453);
    if (R.Plausible) {
      ++Succ;
      if (R.Attempts > 1)
        ++MultiAttempt;
    }
  }
  EXPECT_GE(Succ, 10) << "s453 should nearly always be repaired in budget";
  EXPECT_GE(MultiAttempt, 1) << "some seeds must need the feedback loop";
}

TEST(Fsm, TranscriptRecordsDialogue) {
  llm::SimulatedLLM M(7);
  FsmConfig Cfg;
  MultiAgentFsm Fsm(M, Cfg);
  FsmResult R = Fsm.run(S453);
  ASSERT_GE(R.Transcript.size(), 2u);
  EXPECT_EQ(R.Transcript[0].From, "user-proxy");
  EXPECT_NE(R.Transcript[0].Content.find("dependence analysis"),
            std::string::npos)
      << "prompt must include the Clang remarks";
  bool SawTester = false;
  for (const Message &Msg : R.Transcript)
    if (Msg.From == "compiler-tester")
      SawTester = true;
  EXPECT_TRUE(SawTester);
}

TEST(Fsm, NeverVectorizableFails) {
  llm::SimulatedLLM M(3);
  FsmConfig Cfg;
  Cfg.MaxAttempts = 5;
  MultiAgentFsm Fsm(M, Cfg);
  FsmResult R = Fsm.run(
      "void f(int n, int *a, int *b) { for (int i = 1; i < n; i++) "
      "a[i] = a[i - 1] + b[i]; }");
  EXPECT_FALSE(R.Plausible);
  EXPECT_EQ(R.Transitions.back(), State::Failed);
  EXPECT_EQ(R.Attempts, 5);
}

TEST(Fsm, DependenceFeedbackHelps) {
  // §4.4.1: the FSM with auxiliary tools finds plausible candidates that a
  // bare single completion misses. Compare single-invocation success with
  // and without the dependence remarks across the dependence-category
  // tests.
  int WithFB = 0, WithoutFB = 0;
  int Considered = 0;
  for (const tsvc::TsvcTest &T : tsvc::suite()) {
    if (T.Cat != tsvc::Category::Dependence || Considered >= 25)
      continue;
    ++Considered;
    llm::SimulatedLLM M(lv::hashString(T.Name.c_str()));
    FsmConfig CfgA;
    CfgA.MaxAttempts = 1;
    CfgA.ProvideDependenceFeedback = true;
    MultiAgentFsm FsmA(M, CfgA);
    if (FsmA.run(T.Source).Plausible)
      ++WithFB;
    llm::SimulatedLLM M2(lv::hashString(T.Name.c_str()));
    FsmConfig CfgB;
    CfgB.MaxAttempts = 1;
    CfgB.ProvideDependenceFeedback = false;
    MultiAgentFsm FsmB(M2, CfgB);
    if (FsmB.run(T.Source).Plausible)
      ++WithoutFB;
  }
  EXPECT_GE(WithFB, WithoutFB);
}

TEST(Compilers, TableOneMetadata) {
  using compilers::CompilerId;
  EXPECT_STREQ(compilers::compilerInfo(CompilerId::GCC).Version, "10.5.0");
  EXPECT_STREQ(compilers::compilerInfo(CompilerId::Clang).Version, "19.0.0");
  EXPECT_STREQ(compilers::compilerInfo(CompilerId::ICC).Version,
               "2021.10.0");
}

TEST(Compilers, AllVectorizeNaiveLoop) {
  minic::ParseResult P = minic::parseFunction(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }");
  ASSERT_TRUE(P.ok());
  for (auto C : {compilers::CompilerId::GCC, compilers::CompilerId::Clang,
                 compilers::CompilerId::ICC}) {
    compilers::CompileOutcome O = compilers::compileWith(C, *P.Fn);
    EXPECT_TRUE(O.Vectorized) << compilers::compilerName(C) << ": "
                              << O.Reason;
  }
}

TEST(Compilers, OnlyIccHandlesS212) {
  const tsvc::TsvcTest *T = tsvc::findTest("s212");
  ASSERT_NE(T, nullptr);
  minic::ParseResult P = minic::parseFunction(T->Source);
  ASSERT_TRUE(P.ok());
  compilers::CompileOutcome G =
      compilers::compileWith(compilers::CompilerId::GCC, *P.Fn);
  compilers::CompileOutcome L =
      compilers::compileWith(compilers::CompilerId::Clang, *P.Fn);
  compilers::CompileOutcome I =
      compilers::compileWith(compilers::CompilerId::ICC, *P.Fn);
  EXPECT_FALSE(G.Vectorized);
  EXPECT_FALSE(L.Vectorized);
  EXPECT_NE(G.Reason.find("dependence"), std::string::npos);
  // ICC's dependence analysis resolves the spurious dependence.
  EXPECT_TRUE(I.Vectorized) << I.Reason;
}

TEST(Compilers, NoneVectorizeRecurrences) {
  minic::ParseResult P = minic::parseFunction(
      "void f(int n, int *a, int *b) { for (int i = 1; i < n; i++) "
      "a[i] = a[i - 1] + b[i]; }");
  ASSERT_TRUE(P.ok());
  for (auto C : {compilers::CompilerId::GCC, compilers::CompilerId::Clang,
                 compilers::CompilerId::ICC}) {
    compilers::CompileOutcome O = compilers::compileWith(C, *P.Fn);
    EXPECT_FALSE(O.Vectorized) << compilers::compilerName(C);
  }
}

TEST(Tsvc, SuiteHas149Tests) {
  EXPECT_EQ(tsvc::suite().size(), 149u);
}

TEST(Tsvc, AllTestsParseAndCheck) {
  int Bad = 0;
  for (const tsvc::TsvcTest &T : tsvc::suite()) {
    minic::ParseResult P = minic::parseFunction(T.Source);
    if (!P.ok()) {
      ADD_FAILURE() << T.Name << " does not parse: " << P.Error;
      ++Bad;
      continue;
    }
    minic::SemaResult S = minic::checkFunction(*P.Fn);
    if (!S.ok()) {
      ADD_FAILURE() << T.Name << " fails Sema: " << S.Error;
      ++Bad;
    }
  }
  EXPECT_EQ(Bad, 0);
}

TEST(Tsvc, PaperExamplesPresent) {
  for (const char *Name :
       {"s212", "s124", "s453", "s278", "s274", "s291", "s292", "vsumr"})
    EXPECT_NE(tsvc::findTest(Name), nullptr) << Name;
}

TEST(Tsvc, CategoryMixCoversAllSix) {
  int Counts[6] = {};
  for (const tsvc::TsvcTest &T : tsvc::suite())
    ++Counts[static_cast<int>(T.Cat)];
  for (int I = 0; I < 6; ++I)
    EXPECT_GT(Counts[I], 0) << "category " << I << " empty";
}

} // namespace
