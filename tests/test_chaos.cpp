//===- tests/test_chaos.cpp - fault injection & resilience tests --------------===//
//
// The failure-model contract (src/svc/README.md "Failure model"):
// (1) chaos schedules are pure functions of (ChaosSeed, TaskSeed,
// CallIndex); (2) a task that succeeds after absorbing transient faults
// is bit-identical — modulo the resilience tally line — to the fault-free
// run of the same schedule, at any worker count; (3) every failure is
// classified with the right FailureKind and partial progress is kept;
// (4) deadline expiry degrades to a classified TimedOut outcome whose
// partial equivalence evidence is never cached; (5) waitFor returns the
// timed-out sentinel without abandoning the task.
//
//===----------------------------------------------------------------------===//

#include "llm/Chaos.h"
#include "svc/Service.h"
#include "tsvc/Suite.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace lv;
using namespace lv::svc;

namespace {

/// Small budgets: these tests exercise failure plumbing, not verdict
/// power (mirrors tests/test_svc.cpp).
interp::ChecksumConfig fastChecksum() {
  interp::ChecksumConfig C;
  C.RunsPerN = 1;
  C.NValues = {0, 8, 32};
  C.BufferLen = 128;
  return C;
}

core::EquivConfig fastEquiv() {
  core::EquivConfig Cfg;
  Cfg.Checksum = fastChecksum();
  Cfg.ScalarMax = 4;
  Cfg.MaxTerms = 30'000;
  Cfg.Alive2Budget = 100;
  Cfg.CUnrollBudget = 200;
  Cfg.SplitBudget = 50;
  return Cfg;
}

std::vector<Request> sampleBatch() {
  std::vector<Request> Out;
  for (const tsvc::TsvcTest *T : tsvc::suiteSample(40, 3)) {
    Request R;
    R.Mode = RunMode::Pipeline;
    R.Name = T->Name;
    R.ScalarSource = T->Source;
    R.Fsm.MaxAttempts = 2;
    R.Fsm.Checksum = fastChecksum();
    R.Equiv = fastEquiv();
    Out.push_back(std::move(R));
  }
  return Out;
}

/// debugString minus the ` resilience:` line — the only line allowed to
/// differ between an absorbed-retry run and a fault-free run.
std::string stripResilience(const std::string &S) {
  std::string Out;
  size_t Pos = 0;
  while (Pos < S.size()) {
    size_t Eol = S.find('\n', Pos);
    if (Eol == std::string::npos)
      Eol = S.size() - 1;
    if (S.compare(Pos, 13, " resilience: ") != 0)
      Out.append(S, Pos, Eol - Pos + 1);
    Pos = Eol + 1;
  }
  return Out;
}

std::vector<std::string> runBatchAt(int Workers, const llm::ChaosConfig &Chaos,
                                    std::vector<Outcome> *RawOut = nullptr) {
  ServiceConfig SC;
  SC.Workers = Workers;
  SC.Chaos = Chaos;
  SC.RetryBackoffNanos = 0; // keep the suite fast; backoff is wall-only
  VectorizerService S(SC);
  std::vector<Ticket> Tickets = S.submitBatch(sampleBatch());
  std::vector<std::string> Out;
  for (Ticket T : Tickets) {
    const Outcome &O = S.wait(T);
    if (RawOut)
      RawOut->push_back(O);
    Out.push_back(debugString(O));
  }
  return Out;
}

/// Records which call indices of a chaos-wrapped client faulted.
std::vector<bool> faultPattern(const llm::ChaosConfig &Cfg, uint64_t TaskSeed,
                               int Calls) {
  std::unique_ptr<llm::LLMClient> C =
      llm::wrapChaos(llm::simulatedClientFactory()(0xC60), Cfg, TaskSeed);
  llm::Prompt P;
  P.ScalarSource = "void f(int n, int *a) { for (int i = 0; i < n; i++) "
                   "a[i] = 1; }";
  std::vector<bool> Out;
  for (int I = 0; I < Calls; ++I) {
    try {
      C->complete(P, static_cast<uint64_t>(I));
      Out.push_back(false);
    } catch (const llm::ClientError &) {
      Out.push_back(true);
    }
  }
  return Out;
}

TEST(Chaos, ScheduleIsDeterministicPerTaskSeed) {
  llm::ChaosConfig Cfg;
  Cfg.TransientRate = 0.5;
  std::vector<bool> A = faultPattern(Cfg, 1, 32);
  std::vector<bool> B = faultPattern(Cfg, 1, 32);
  EXPECT_EQ(A, B) << "same (chaos seed, task seed) must replay identically";
  std::vector<bool> C = faultPattern(Cfg, 2, 32);
  EXPECT_NE(A, C) << "different task seeds must draw independent schedules";
  size_t Faults = 0;
  for (bool F : A)
    Faults += F ? 1 : 0;
  EXPECT_GT(Faults, 0u);
  EXPECT_LT(Faults, 32u);
}

TEST(Chaos, ScriptPlacesFaultsExactly) {
  llm::ChaosConfig Cfg;
  Cfg.TransientCallScript = {0, 3};
  std::vector<bool> P = faultPattern(Cfg, 7, 6);
  std::vector<bool> Want = {true, false, false, true, false, false};
  EXPECT_EQ(P, Want);
}

TEST(Chaos, FactoryDecoratorWraps) {
  llm::ChaosConfig Cfg;
  Cfg.TransientCallScript = {0};
  llm::ClientFactory F =
      llm::chaosClientFactory(llm::simulatedClientFactory(), Cfg);
  std::unique_ptr<llm::LLMClient> C = F(0xC60);
  llm::Prompt P;
  P.ScalarSource = "void f(int n, int *a) { for (int i = 0; i < n; i++) "
                   "a[i] = 1; }";
  EXPECT_THROW(C->complete(P, 0), llm::ClientError);
  EXPECT_NO_THROW(C->complete(P, 0)); // index 1 of the schedule: clean
}

// The retry determinism contract: every task's first client call faults
// transiently, the retry re-runs the FSM on the same client (schedule
// consumed), and the surviving outcome must be byte-identical to the
// fault-free run except for the resilience tally — at 1, 2, and 8
// workers.
TEST(Chaos, AbsorbedRetryIsBitIdenticalToFaultFreeRun) {
  std::vector<std::string> Baseline = runBatchAt(1, llm::ChaosConfig());

  llm::ChaosConfig Chaos;
  Chaos.TransientCallScript = {0};
  for (int Workers : {1, 2, 8}) {
    std::vector<Outcome> Raw;
    std::vector<std::string> Got = runBatchAt(Workers, Chaos, &Raw);
    ASSERT_EQ(Got.size(), Baseline.size());
    for (size_t I = 0; I < Got.size(); ++I) {
      EXPECT_FALSE(Raw[I].Failed);
      EXPECT_EQ(Raw[I].Failure, FailureKind::None);
      EXPECT_EQ(Raw[I].Retries, 1) << Raw[I].Name;
      EXPECT_NE(Got[I], Baseline[I])
          << "the resilience line must record the retry";
      EXPECT_EQ(stripResilience(Got[I]), stripResilience(Baseline[I]))
          << "workers=" << Workers << " task=" << Raw[I].Name;
    }
  }
}

TEST(Chaos, PermanentClientErrorFailsWithoutRetry) {
  llm::ChaosConfig Chaos;
  Chaos.PermanentRate = 1.0;
  std::vector<Outcome> Raw;
  runBatchAt(1, Chaos, &Raw);
  for (const Outcome &O : Raw) {
    EXPECT_TRUE(O.Failed);
    EXPECT_EQ(O.Failure, FailureKind::ClientPermanent);
    EXPECT_EQ(O.Retries, 0);
    // Graceful degradation: the partial transcript survives the abort.
    EXPECT_TRUE(O.GenerateRan);
    ASSERT_FALSE(O.Fsm.Transcript.empty());
    EXPECT_NE(O.Fsm.Transcript.back().Content.find("client error"),
              std::string::npos);
  }
}

TEST(Chaos, TransientRetriesExhaustClassified) {
  llm::ChaosConfig Chaos;
  Chaos.TransientRate = 1.0;
  std::vector<Outcome> Raw;
  runBatchAt(1, Chaos, &Raw);
  for (const Outcome &O : Raw) {
    EXPECT_TRUE(O.Failed);
    EXPECT_EQ(O.Failure, FailureKind::ClientTransient);
    EXPECT_EQ(O.Retries, 2); // ServiceConfig::ClientRetries default
  }
}

TEST(Chaos, DeadlineExpiryClassifiedTimedOutWithPartialEvidence) {
  ServiceConfig SC;
  SC.Workers = 1;
  VectorizerService S(SC);

  Request R;
  R.Mode = RunMode::Verify;
  R.Name = "doomed";
  R.ScalarSource = "void f(int n, int *a) { for (int i = 0; i < n; i++) "
                   "a[i] = a[i] + 1; }";
  R.CandidateSource = R.ScalarSource;
  R.Equiv = fastEquiv();
  R.DeadlineNanos = 1; // expired before the first checkpoint
  const Outcome &O = S.wait(S.submit(R));
  EXPECT_TRUE(O.Failed);
  EXPECT_EQ(O.Failure, FailureKind::TimedOut);
  EXPECT_TRUE(O.VerifyRan);
  EXPECT_TRUE(O.Equiv.Cancelled);
  EXPECT_EQ(O.Equiv.Final, core::EquivResult::Inconclusive);
  EXPECT_EQ(O.DeadlineNanos, 1u);
}

TEST(Chaos, PipelineDeadlineAbortsFsmAsTimedOut) {
  ServiceConfig SC;
  SC.Workers = 1;
  VectorizerService S(SC);
  std::vector<Request> Batch = sampleBatch();
  Batch[0].DeadlineNanos = 1;
  const Outcome &O = S.wait(S.submit(Batch[0]));
  EXPECT_TRUE(O.Failed);
  EXPECT_EQ(O.Failure, FailureKind::TimedOut);
  EXPECT_TRUE(O.GenerateRan);
  EXPECT_EQ(O.Fsm.Abort, agents::FsmAbort::Cancelled);
}

// A cancelled equivalence result reflects the deadline, not the pair: it
// must never be served to a later request for the same pair.
TEST(Chaos, CancelledVerdictIsNeverCached) {
  ServiceConfig SC;
  SC.Workers = 1;
  VectorizerService S(SC);

  Request R;
  R.Mode = RunMode::Verify;
  R.Name = "pair";
  R.ScalarSource = "void f(int n, int *a, int *b) { for (int i = 0; i < n; "
                   "i++) a[i] = b[i]; }";
  R.CandidateSource = R.ScalarSource;
  R.Equiv = fastEquiv();

  Request Doomed = R;
  Doomed.DeadlineNanos = 1;
  const Outcome &First = S.wait(S.submit(Doomed));
  ASSERT_EQ(First.Failure, FailureKind::TimedOut);

  const Outcome &Second = S.wait(S.submit(R));
  EXPECT_FALSE(Second.Failed);
  EXPECT_FALSE(Second.VerdictCacheHit)
      << "the cancelled result must not have been cached";
  EXPECT_FALSE(Second.Equiv.Cancelled);

  const Outcome &Third = S.wait(S.submit(R));
  EXPECT_TRUE(Third.VerdictCacheHit) << "the real verdict is cached";
  EXPECT_EQ(debugString(Third), debugString(Second));
}

TEST(Chaos, WaitForReturnsSentinelThenOutcome) {
  ServiceConfig SC;
  SC.Workers = 1;
  // A guaranteed-slow task: every client call pays 200ms of injected
  // latency (no deadline, so it completes fine).
  SC.Chaos.LatencyRate = 1.0;
  SC.Chaos.LatencyNanos = 200'000'000;
  SC.RetryBackoffNanos = 0;
  VectorizerService S(SC);
  Ticket T = S.submit(sampleBatch()[0]);
  const Outcome *Peek = S.waitFor(T, 1'000'000); // 1ms: still running
  EXPECT_EQ(Peek, nullptr);
  const Outcome *Done = S.waitFor(T, 60'000'000'000ULL);
  ASSERT_NE(Done, nullptr);
  EXPECT_FALSE(Done->Failed);

  std::vector<VectorizerService::TaskStatus> Batch =
      S.waitBatchFor({T}, 1'000'000);
  ASSERT_EQ(Batch.size(), 1u);
  EXPECT_EQ(Batch[0].State, VectorizerService::TaskState::Done);
  EXPECT_EQ(Batch[0].Out, Done) << "a finished task is returned immediately";
}

} // namespace
