//===- tests/test_cross.cpp - cross-layer consistency properties --------------===//
//
// Property suites tying the substrate layers together:
//
//  1. Interpreter vs symbolic executor: running a function concretely must
//     agree with evaluating the symbolic final state under the same
//     concrete inputs (the TV encoding is only trustworthy if it matches
//     the executable semantics the checksum harness uses).
//  2. Generator soundness at scale: every clean vectorization the
//     simulated LLM produces for the TSVC suite must be checksum-plausible
//     — wrong clean output would silently poison every experiment.
//  3. Pipeline verdict consistency: Equivalent candidates must never be
//     distinguishable by extra randomized checksum rounds.
//
//===----------------------------------------------------------------------===//

#include "interp/Checksum.h"
#include "interp/Interp.h"
#include "llm/Vectorizer.h"
#include "minic/Parser.h"
#include "minic/Printer.h"
#include "smt/Term.h"
#include "support/Rng.h"
#include "tsvc/Suite.h"
#include "tv/SymExec.h"
#include "vir/Compile.h"

#include <gtest/gtest.h>

using namespace lv;

namespace {

/// Kernels with varied shapes for the interp-vs-symexec agreement suite.
const char *CrossKernels[] = {
    "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
    "a[i] = b[i] * 3 + 1; }",
    "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) { "
    "if (b[i] > 2) a[i] = b[i]; else a[i] = -b[i]; } }",
    "int f(int n, int *a) { int s = 0; for (int i = 0; i < n; i++) "
    "s += a[i]; return s; }",
    "void f(int n, int *a) { for (int i = 1; i < n; i++) "
    "a[i] = a[i - 1] + 1; }",
    "int f(int n, int *a, int *b) { int s = 0; for (int i = 0; i < n; "
    "i++) { a[i] = b[i] & 7; if (a[i] == 3) continue; s += a[i]; } "
    "return s; }",
    "int f(int n, int *a) { for (int i = 0; i < n; i++) { if (a[i] < 0) "
    "break; a[i] = a[i] >> 1; } return a[0]; }",
};

class CrossExecTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CrossExecTest, InterpreterMatchesSymbolicExecutor) {
  auto [KernelIdx, Seed] = GetParam();
  const char *Src = CrossKernels[static_cast<size_t>(KernelIdx)];
  vir::CompileResult C = vir::compileFunction(Src);
  ASSERT_TRUE(C.ok()) << C.Error;

  // Concrete run.
  Rng R(static_cast<uint64_t>(Seed) * 7919 + 3);
  const int Cap = 12;
  int N = static_cast<int>(R.below(Cap));
  interp::MemoryImage Mem;
  std::vector<std::vector<int32_t>> Inputs;
  for (const vir::RegionInfo &M : C.Fn->Memories) {
    (void)M;
    std::vector<int32_t> Buf(Cap);
    for (int32_t &V : Buf)
      V = R.rangeInt(-20, 20);
    Inputs.push_back(Buf);
    Mem.Regions.push_back(Buf);
  }
  interp::ExecResult IR = interp::execute(*C.Fn, {N}, Mem);
  if (!IR.ok())
    GTEST_SKIP() << "concrete run trapped: " << IR.TrapMsg;

  // Symbolic run, then evaluate under the same inputs.
  smt::TermTable T;
  tv::SharedInputs In(T);
  tv::ExecOptions Opts;
  Opts.UnrollBound = Cap + 2;
  Opts.MemWindow = Cap;
  tv::SymState SS = tv::executeSymbolic(*C.Fn, T, In, Opts);
  ASSERT_TRUE(SS.ok()) << SS.Error;

  std::unordered_map<smt::TermId, uint32_t> Env;
  Env[In.scalar("n")] = static_cast<uint32_t>(N);
  for (size_t MI = 0; MI < C.Fn->Memories.size(); ++MI) {
    const std::vector<tv::SymVal> &Base =
        In.arrayBase(C.Fn->Memories[MI].Name, Cap);
    Env[In.arraySize(C.Fn->Memories[MI].Name)] = Cap;
    for (int K = 0; K < Cap; ++K)
      Env[Base[static_cast<size_t>(K)].Val] =
          static_cast<uint32_t>(Inputs[MI][static_cast<size_t>(K)]);
  }
  // The concrete input must satisfy the unroll-exhaustion assumptions and
  // be UB-free (the interpreter ran clean and in-bounds).
  ASSERT_TRUE(T.evalBool(SS.Assum, Env));
  EXPECT_FALSE(T.evalBool(SS.UB, Env))
      << "symbolic UB on an input the interpreter executed cleanly";

  // Final memory agreement, cell by cell.
  for (size_t MI = 0; MI < C.Fn->Memories.size(); ++MI) {
    for (int K = 0; K < Cap; ++K) {
      tv::SymVal Cell =
          SS.Mems[MI].read(T.mkConst(static_cast<uint32_t>(K)));
      if (T.evalBool(Cell.Poison, Env))
        continue; // poison cells have no concrete obligation
      EXPECT_EQ(static_cast<int32_t>(T.evalBv(Cell.Val, Env)),
                Mem.Regions[MI][static_cast<size_t>(K)])
          << "kernel " << KernelIdx << " region " << MI << " cell " << K
          << " n=" << N;
    }
  }
  // Return value agreement.
  if (C.Fn->ReturnsValue && IR.Returned) {
    ASSERT_TRUE(T.evalBool(SS.RetCond, Env));
    if (!T.evalBool(SS.RetVal.Poison, Env))
      EXPECT_EQ(static_cast<int32_t>(T.evalBv(SS.RetVal.Val, Env)),
                IR.RetVal);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, CrossExecTest,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Range(0, 8)));

/// Every clean (fault-free, sound-by-construction) vectorization over the
/// whole TSVC suite must pass checksum testing.
TEST(GeneratorSoundness, CleanOutputsAreAlwaysPlausible) {
  int Checked = 0;
  for (const tsvc::TsvcTest &T : tsvc::suite()) {
    minic::ParseResult P = minic::parseFunction(T.Source);
    ASSERT_TRUE(P.ok()) << T.Name;
    llm::GenResult G = llm::vectorizeFunction(*P.Fn, llm::FaultPlan());
    if (!G.Fn || !G.SoundByConstruction)
      continue;
    ++Checked;
    vir::CompileResult SC = vir::compileFunction(T.Source);
    vir::CompileResult VC =
        vir::compileFunction(minic::printFunction(*G.Fn));
    ASSERT_TRUE(SC.ok()) << T.Name;
    ASSERT_TRUE(VC.ok()) << T.Name << ": " << VC.Error << "\n"
                         << minic::printFunction(*G.Fn);
    interp::ChecksumOutcome O = interp::runChecksumTest(*SC.Fn, *VC.Fn);
    EXPECT_EQ(O.Verdict, interp::TestVerdict::Plausible)
        << T.Name << ": " << O.Detail << "\n"
        << minic::printFunction(*G.Fn);
  }
  // The repertoire must cover a substantial part of the suite.
  EXPECT_GE(Checked, 60) << "generator coverage regressed";
}

/// Wraparound peeling (s291/s292) specifically: generated code handles
/// non-multiple-of-8 bounds through the peel + epilogue structure.
TEST(GeneratorSoundness, WraparoundPeelHandlesAllBounds) {
  const tsvc::TsvcTest *T = tsvc::findTest("s291");
  ASSERT_NE(T, nullptr);
  minic::ParseResult P = minic::parseFunction(T->Source);
  llm::GenResult G = llm::vectorizeFunction(*P.Fn, llm::FaultPlan());
  ASSERT_NE(G.Fn, nullptr) << "s291 must be vectorizable (peeling)";
  vir::CompileResult SC = vir::compileFunction(T->Source);
  vir::CompileResult VC = vir::compileFunction(minic::printFunction(*G.Fn));
  ASSERT_TRUE(VC.ok()) << VC.Error;
  interp::ChecksumConfig Cfg;
  Cfg.NValues = {0, 1, 2, 7, 8, 9, 16, 64, 200};
  interp::ChecksumOutcome O = interp::runChecksumTest(*SC.Fn, *VC.Fn, Cfg);
  EXPECT_EQ(O.Verdict, interp::TestVerdict::Plausible)
      << O.Detail << "\n" << minic::printFunction(*G.Fn);
}

} // namespace
