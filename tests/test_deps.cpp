//===- tests/test_deps.cpp - dependence analysis tests -----------------------===//
//
// Tests for loop-shape recognition, affine subscripts, dependence distances
// and scalar classification on TSVC-style kernels.
//
//===----------------------------------------------------------------------===//

#include "deps/Analysis.h"
#include "minic/Parser.h"

#include <gtest/gtest.h>

using namespace lv;
using namespace lv::deps;

namespace {

static LoopAnalysis analyze(const char *Src) {
  minic::ParseResult R = minic::parseFunction(Src);
  if (!R.ok())
    throw std::runtime_error("parse failed: " + R.Error);
  return analyzeFunction(*R.Fn);
}

TEST(Deps, CanonicalLoopShape) {
  LoopAnalysis LA = analyze(
      "void f(int n, int *a) { for (int i = 0; i < n; i++) a[i] = 1; }");
  ASSERT_TRUE(LA.HasLoop);
  const LoopShape &L = LA.inner();
  EXPECT_TRUE(L.Canonical);
  EXPECT_EQ(L.Iter, "i");
  EXPECT_EQ(L.Start, 0);
  EXPECT_EQ(L.Step, 1);
  EXPECT_TRUE(L.End.Valid);
  EXPECT_EQ(L.End.Param, "n");
  EXPECT_EQ(L.End.Offset, 0);
}

TEST(Deps, BoundWithOffsetAndStride) {
  LoopAnalysis LA = analyze(
      "void f(int n, int *a) { for (int i = 0; i < n - 1; i += 2) "
      "a[i] = 1; }");
  const LoopShape &L = LA.inner();
  EXPECT_TRUE(L.Canonical);
  EXPECT_EQ(L.Step, 2);
  EXPECT_EQ(L.End.Offset, -1);
}

TEST(Deps, InclusiveBound) {
  LoopAnalysis LA = analyze(
      "void f(int n, int *a) { for (int i = 0; i <= n - 8; i++) a[i] = 1; }");
  EXPECT_TRUE(LA.inner().InclusiveEnd);
  EXPECT_EQ(LA.inner().End.Offset, -8);
}

TEST(Deps, NonCanonicalDecrement) {
  LoopAnalysis LA = analyze(
      "void f(int n, int *a) { for (int i = n; i > 0; i--) a[i - 1] = 1; }");
  EXPECT_TRUE(LA.HasLoop);
  EXPECT_FALSE(LA.inner().Canonical);
}

TEST(Deps, AffineSubscripts) {
  LoopAnalysis LA = analyze(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[2 * i + 3] = b[i - 1]; }");
  ASSERT_EQ(LA.Accesses.size(), 2u);
  const ArrayAccess &W = LA.Accesses[0];
  EXPECT_TRUE(W.IsWrite);
  EXPECT_EQ(W.Sub.Coef, 2);
  EXPECT_EQ(W.Sub.Offset, 3);
  const ArrayAccess &R = LA.Accesses[1];
  EXPECT_FALSE(R.IsWrite);
  EXPECT_EQ(R.Sub.Coef, 1);
  EXPECT_EQ(R.Sub.Offset, -1);
}

TEST(Deps, S212SpuriousAntiDependence) {
  LoopAnalysis LA = analyze(R"(
    void s212(int n, int *a, int *b, int *c, int *d) {
      for (int i = 0; i < n - 1; i++) {
        a[i] *= c[i];
        b[i] += a[i + 1] * d[i];
      }
    })");
  // Write a[i] / read a[i+1]: anti dependence at distance +1, resolvable
  // by loading first (the paper's spurious-dependence discussion).
  bool FoundSpurious = false;
  for (const Dependence &D : LA.Deps)
    if (D.Array == "a" && D.MayBeSpurious && D.Distance == 1)
      FoundSpurious = true;
  EXPECT_TRUE(FoundSpurious);
  EXPECT_FALSE(LA.hasLoopCarriedDependence())
      << "s212's dependence is spurious, not blocking";
}

TEST(Deps, TrueRecurrenceDetected) {
  LoopAnalysis LA = analyze(
      "void f(int n, int *a, int *b) { for (int i = 1; i < n; i++) "
      "a[i] = a[i - 1] + b[i]; }");
  EXPECT_TRUE(LA.hasLoopCarriedDependence());
  bool Found = false;
  for (const Dependence &D : LA.Deps)
    if (D.Array == "a" && D.LoopCarried && D.Distance == -1)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Deps, ReductionClassified) {
  LoopAnalysis LA = analyze(
      "int f(int n, int *a) { int sum = 0; for (int i = 0; i < n; i++) "
      "sum += a[i]; return sum; }");
  ASSERT_EQ(LA.Scalars.size(), 1u);
  EXPECT_EQ(LA.Scalars[0].K, ScalarUpdate::Reduction);
  EXPECT_TRUE(LA.hasReduction());
}

TEST(Deps, InductionClassified) {
  LoopAnalysis LA = analyze(
      "void f(int n, int *a, int *b) { int s = 0; "
      "for (int i = 0; i < n; i++) { s += 2; a[i] = s * b[i]; } }");
  ASSERT_GE(LA.Scalars.size(), 1u);
  EXPECT_EQ(LA.Scalars[0].K, ScalarUpdate::Induction);
  EXPECT_EQ(LA.Scalars[0].Step, 2);
}

TEST(Deps, GuardedInductionClassified) {
  // s124's j++ inside both branches.
  LoopAnalysis LA = analyze(R"(
    void f(int *a, int *b, int n) {
      int j = -1;
      for (int i = 0; i < n; i++) {
        if (b[i] > 0) {
          j++;
          a[j] = 1;
        } else {
          j++;
          a[j] = 2;
        }
      }
    })");
  bool FoundInduction = false;
  for (const ScalarUpdate &U : LA.Scalars)
    if (U.Name == "j" && U.K == ScalarUpdate::Induction && U.GuardedUpdate)
      FoundInduction = true;
  EXPECT_TRUE(FoundInduction);
  EXPECT_TRUE(LA.HasControlFlow);
}

TEST(Deps, WraparoundClassified) {
  LoopAnalysis LA = analyze(R"(
    void s291(int n, int *a, int *b) {
      int im1 = n - 1;
      for (int i = 0; i < n; i++) {
        a[i] = (b[i] + b[im1]) * 2;
        im1 = i;
      }
    })");
  bool Found = false;
  for (const ScalarUpdate &U : LA.Scalars)
    if (U.Name == "im1" && U.K == ScalarUpdate::Wraparound)
      Found = true;
  EXPECT_TRUE(Found);
}

TEST(Deps, IndirectAccessDetected) {
  LoopAnalysis LA = analyze(
      "void f(int n, int *a, int *b, int *idx) { "
      "for (int i = 0; i < n; i++) a[idx[i]] = b[i]; }");
  EXPECT_TRUE(LA.HasIndirectAccess);
}

TEST(Deps, NestedLoopDetected) {
  LoopAnalysis LA = analyze(R"(
    void f(int n, int *a, int *b) {
      for (int j = 0; j < n; j++) {
        for (int i = 0; i < n; i++) {
          a[i] = a[i] + b[i];
        }
      }
    })");
  EXPECT_TRUE(LA.isNested());
  EXPECT_EQ(LA.Nest.size(), 2u);
  EXPECT_EQ(LA.Nest[0].Iter, "j");
  EXPECT_EQ(LA.Nest[1].Iter, "i");
}

TEST(Deps, SpatialSplittingEligibility) {
  LoopAnalysis Yes = analyze(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }");
  EXPECT_TRUE(Yes.spatialSplittingEligible());

  LoopAnalysis NoOffset = analyze(
      "void f(int n, int *a) { for (int i = 0; i < n; i++) "
      "a[i] = a[i + 1] + 1; }");
  EXPECT_FALSE(NoOffset.spatialSplittingEligible())
      << "a[i+1] read fails the conservative syntactic check (paper §3.3)";

  LoopAnalysis NoScalar = analyze(
      "int f(int n, int *a) { int s = 0; for (int i = 0; i < n; i++) "
      "s += a[i]; return s; }");
  EXPECT_FALSE(NoScalar.spatialSplittingEligible());
}

TEST(Deps, FeedbackRendersRemarks) {
  LoopAnalysis LA = analyze(
      "void f(int n, int *a, int *b) { for (int i = 1; i < n; i++) "
      "a[i] = a[i - 1] + b[i]; }");
  std::string FB = renderCompilerFeedback(LA);
  EXPECT_NE(FB.find("loop-carried"), std::string::npos);
  EXPECT_NE(FB.find("prevents vectorization"), std::string::npos);
}

TEST(Deps, FeedbackMentionsSpuriousResolution) {
  LoopAnalysis LA = analyze(R"(
    void s212(int n, int *a, int *b, int *c, int *d) {
      for (int i = 0; i < n - 1; i++) {
        a[i] *= c[i];
        b[i] += a[i + 1] * d[i];
      }
    })");
  std::string FB = renderCompilerFeedback(LA);
  EXPECT_NE(FB.find("loading before storing"), std::string::npos) << FB;
}

} // namespace
