//===- tests/test_interp_bytecode.cpp - bytecode VM + batch harness tests -----===//
//
// The bytecode engine's contract is bit-identical execution: over the full
// TSVC corpus, compiled programs must reproduce the tree-walk's outputs,
// return values, modeled cycle counts (bitwise double equality), step
// counts, work histograms, and trap behavior (div-by-zero, out-of-bounds,
// hang budget). On top of that, the batched checksum harness and the
// scalar-reference memo must be verdict-identical to the sequential seed
// path — including through svc::VectorizerService at 1/2/8 workers.
//
//===----------------------------------------------------------------------===//

#include "interp/Bytecode.h"
#include "interp/Checksum.h"
#include "llm/Client.h"
#include "support/Rng.h"
#include "svc/Service.h"
#include "tsvc/Suite.h"
#include "vir/Compile.h"

#include <gtest/gtest.h>

#include <cstring>
#include <map>

using namespace lv;
using namespace lv::interp;
using namespace lv::vir;

namespace {

/// Bitwise double comparison: modeled cycles must not drift by even one
/// ULP between engines (accumulation order is part of the contract).
static bool sameBits(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

/// Random inputs for every param region of \p F plus a value for every
/// scalar parameter ("n" gets \p N).
struct RunSetup {
  MemoryImage Mem;
  std::vector<int32_t> Args;
};

static RunSetup makeSetup(const VFunction &F, int N, uint64_t Seed,
                          int BufferLen) {
  RunSetup S;
  Rng R(Seed);
  for (size_t I = 0; I < F.Memories.size(); ++I) {
    S.Mem.Regions.emplace_back();
    if (!F.Memories[I].IsParam)
      continue;
    std::vector<int32_t> Buf(static_cast<size_t>(BufferLen));
    for (int32_t &V : Buf)
      V = R.rangeInt(-100, 100);
    S.Mem.Regions.back() = std::move(Buf);
  }
  for (const VParam &P : F.Params) {
    if (P.IsPointer)
      continue;
    S.Args.push_back(P.Name == "n" ? N : R.rangeInt(0, 8));
  }
  return S;
}

/// Runs \p F on both engines from identical state and asserts every
/// observable field of ExecResult matches.
static void expectEngineParity(const VFunction &F, int N, uint64_t Seed,
                               const ExecConfig &Cfg,
                               const std::string &Label) {
  RunSetup Tree = makeSetup(F, N, Seed, 64);
  RunSetup Bc = Tree; // identical images
  ExecResult RT = execute(F, Tree.Args, Tree.Mem, Cfg);
  std::shared_ptr<const BytecodeProgram> P = compileBytecodeCached(F);
  ExecResult RB = execBytecode(*P, Bc.Args, Bc.Mem, Cfg);

  ASSERT_EQ(RT.St, RB.St) << Label;
  EXPECT_EQ(RT.TrapMsg, RB.TrapMsg) << Label;
  EXPECT_EQ(RT.Cause, RB.Cause) << Label;
  EXPECT_EQ(RT.Steps, RB.Steps) << Label;
  EXPECT_TRUE(sameBits(RT.Cycles, RB.Cycles))
      << Label << ": cycles " << RT.Cycles << " vs " << RB.Cycles;
  EXPECT_EQ(RT.Returned, RB.Returned) << Label;
  EXPECT_EQ(RT.RetVal, RB.RetVal) << Label;
  EXPECT_TRUE(RT.Work == RB.Work) << Label << ": work histogram differs";
  ASSERT_EQ(Tree.Mem.Regions.size(), Bc.Mem.Regions.size()) << Label;
  for (size_t I = 0; I < Tree.Mem.Regions.size(); ++I)
    EXPECT_EQ(Tree.Mem.Regions[I], Bc.Mem.Regions[I])
        << Label << ": region " << I;
}

TEST(Bytecode, ParityOverFullTsvcCorpus) {
  // Every TSVC scalar, with and without the cost model, at several loop
  // bounds (including 0: no iterations).
  CostModel CM;
  for (const tsvc::TsvcTest &T : tsvc::suite()) {
    CompileResult C = compileFunction(T.Source);
    ASSERT_TRUE(C.ok()) << T.Name << ": " << C.Error;
    for (int N : {0, 8, 32}) {
      ExecConfig Plain;
      expectEngineParity(*C.Fn, N, hashString(T.Name.c_str()), Plain,
                         T.Name + "/plain");
      ExecConfig Costed;
      Costed.Costs = &CM;
      expectEngineParity(*C.Fn, N, hashString(T.Name.c_str()) ^ 1, Costed,
                         T.Name + "/costed");
    }
  }
}

TEST(Bytecode, ParityOnVectorizedCandidates) {
  // Vector opcodes: run the simulated LLM's rule-based vectorizations of a
  // slice of the corpus through both engines.
  llm::ClientFactory Factory = llm::simulatedClientFactory();
  std::unique_ptr<llm::LLMClient> Client = Factory(0xC60);
  CostModel CM;
  int Checked = 0;
  for (const tsvc::TsvcTest *T : tsvc::suiteSample(5, 40)) {
    llm::Prompt P;
    P.ScalarSource = T->Source;
    for (int K = 0; K < 3; ++K) {
      llm::Completion C = Client->complete(P, static_cast<uint64_t>(K));
      CompileResult VC = compileFunction(C.Source);
      if (!VC.ok())
        continue;
      ExecConfig Costed;
      Costed.Costs = &CM;
      expectEngineParity(*VC.Fn, 16, hashString(T->Name.c_str()) + K,
                         Costed, T->Name + "/cand");
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 30) << "corpus slice produced too few candidates";
}

TEST(Bytecode, TrapParityDivByZero) {
  CompileResult C = compileFunction("int f(int n) { return 10 / n; }");
  ASSERT_TRUE(C.ok());
  MemoryImage M1, M2;
  ExecResult RT = execute(*C.Fn, {0}, M1);
  ExecResult RB = execBytecode(*compileBytecodeCached(*C.Fn), {0}, M2);
  EXPECT_EQ(RT.St, ExecResult::Trap);
  EXPECT_EQ(RB.St, ExecResult::Trap);
  EXPECT_EQ(RB.Cause, TrapKind::DivByZero);
  EXPECT_EQ(RT.TrapMsg, RB.TrapMsg);
}

TEST(Bytecode, TrapParityOutOfBounds) {
  CompileResult C = compileFunction("void f(int n, int *a) { a[n] = 1; }");
  ASSERT_TRUE(C.ok());
  MemoryImage M1, M2;
  M1.Regions = {std::vector<int32_t>(4, 0)};
  M2 = M1;
  ExecResult RT = execute(*C.Fn, {100}, M1);
  ExecResult RB = execBytecode(*compileBytecodeCached(*C.Fn), {100}, M2);
  EXPECT_EQ(RT.St, ExecResult::Trap);
  EXPECT_EQ(RB.St, ExecResult::Trap);
  EXPECT_EQ(RB.Cause, TrapKind::OutOfBounds);
  EXPECT_EQ(RT.TrapMsg, RB.TrapMsg);
}

TEST(Bytecode, HangBudgetParity) {
  CompileResult C = compileFunction("void f(int n) { for (;;) { n = n; } }");
  ASSERT_TRUE(C.ok()) << C.Error;
  ExecConfig Cfg;
  Cfg.MaxSteps = 10'000;
  MemoryImage M1, M2;
  ExecResult RT = execute(*C.Fn, {1}, M1, Cfg);
  ExecResult RB = execBytecode(*compileBytecodeCached(*C.Fn), {1}, M2, Cfg);
  EXPECT_EQ(RT.St, ExecResult::OutOfFuel);
  EXPECT_EQ(RB.St, ExecResult::OutOfFuel);
  EXPECT_EQ(RT.Steps, RB.Steps);
  EXPECT_TRUE(RT.Work == RB.Work);
}

TEST(Bytecode, BreakContinueReturnParity) {
  CompileResult C = compileFunction(R"(
    int f(int n, int *a) {
      int cnt = 0;
      for (int i = 0; i < n; i++) {
        if (a[i] < 0)
          continue;
        if (a[i] == 99)
          break;
        if (a[i] == 77)
          return -7;
        cnt++;
      }
      return cnt;
    })");
  ASSERT_TRUE(C.ok());
  for (int32_t Marker : {99, 77, 5}) {
    MemoryImage M1;
    M1.Regions = {{5, -1, 7, Marker, 4, 4, 4, 4, 4, 4}};
    MemoryImage M2 = M1;
    ExecResult RT = execute(*C.Fn, {10}, M1);
    ExecResult RB = execBytecode(*compileBytecodeCached(*C.Fn), {10}, M2);
    EXPECT_EQ(RT.RetVal, RB.RetVal) << Marker;
    EXPECT_EQ(RT.Steps, RB.Steps) << Marker;
  }
}

TEST(Bytecode, BreakContinueInStepRegionBindToEnclosingLoop) {
  // Hand-built IR (the C frontend never emits this shape): an inner loop
  // whose *step region* ends in Continue or Break. In the tree-walk the
  // signal propagates out of the inner For to the enclosing loop; the
  // flattener must bind these to the enclosing frame, not the inner one.
  auto build = [](Node::Kind Terminator) {
    auto F = std::make_unique<VFunction>();
    F->Name = "steps";
    F->ReturnsValue = true;
    int RI = F->newReg(VType::I32, "i");
    int RJ = F->newReg(VType::I32, "j");
    int RCnt = F->newReg(VType::I32, "cnt");
    int RC = F->newReg(VType::I32, "c");
    int ROne = F->newReg(VType::I32, "one");
    int RLim = F->newReg(VType::I32, "lim");

    auto constI = [&](int Rd, int64_t V) {
      Instr I;
      I.Opcode = Op::ConstI32;
      I.Rd = Rd;
      I.Imm = V;
      return Node::mkInst(I);
    };
    auto binI = [&](Op O, int Rd, int A, int B) {
      Instr I;
      I.Opcode = O;
      I.Rd = Rd;
      I.Args = {A, B};
      return Node::mkInst(I);
    };
    auto cmpLt = [&](int Rd, int A, int B) {
      Instr I;
      I.Opcode = Op::ICmp;
      I.P = Pred::SLT;
      I.Rd = Rd;
      I.Args = {A, B};
      return Node::mkInst(I);
    };

    F->Body.Nodes.push_back(constI(RCnt, 0));
    F->Body.Nodes.push_back(constI(ROne, 1));
    F->Body.Nodes.push_back(constI(RLim, 3));

    auto Outer = std::make_unique<Node>(Node::For);
    Outer->CondReg = RC;
    Outer->Init.Nodes.push_back(constI(RI, 0));
    Outer->CondCalc.Nodes.push_back(cmpLt(RC, RI, RLim));
    Outer->StepR.Nodes.push_back(binI(Op::Add, RI, RI, ROne));

    auto Inner = std::make_unique<Node>(Node::For);
    Inner->CondReg = RC;
    Inner->Init.Nodes.push_back(constI(RJ, 0));
    Inner->CondCalc.Nodes.push_back(cmpLt(RC, RJ, RLim));
    Inner->BodyR.Nodes.push_back(binI(Op::Add, RCnt, RCnt, ROne));
    Inner->StepR.Nodes.push_back(binI(Op::Add, RJ, RJ, ROne));
    Inner->StepR.Nodes.push_back(std::make_unique<Node>(Terminator));

    Outer->BodyR.Nodes.push_back(std::move(Inner));
    F->Body.Nodes.push_back(std::move(Outer));

    auto Ret = std::make_unique<Node>(Node::Ret);
    Ret->CondReg = RCnt;
    F->Body.Nodes.push_back(std::move(Ret));
    return F;
  };

  for (Node::Kind K : {Node::Continue, Node::Break}) {
    VFunctionPtr F = build(K);
    MemoryImage M1, M2;
    ExecResult RT = execute(*F, {}, M1);
    ExecResult RB = execBytecode(*compileBytecodeCached(*F), {}, M2);
    ASSERT_EQ(RT.St, RB.St) << static_cast<int>(K);
    EXPECT_EQ(RT.RetVal, RB.RetVal) << static_cast<int>(K);
    EXPECT_EQ(RT.Steps, RB.Steps) << static_cast<int>(K);
    EXPECT_TRUE(RT.Work == RB.Work) << static_cast<int>(K);
  }
  // And the expected tree-walk semantics themselves: Continue in the
  // inner step continues the *outer* loop (one inner body run per outer
  // iteration -> 3); Break there breaks the outer loop (-> 1).
  MemoryImage M;
  EXPECT_EQ(execute(*build(Node::Continue), {}, M).RetVal, 3);
  MemoryImage M2;
  EXPECT_EQ(execute(*build(Node::Break), {}, M2).RetVal, 1);
}

TEST(Bytecode, CacheSharesPrograms) {
  CompileResult C = compileFunction(
      "void uniq_cache_probe(int n, int *a) { for (int i = 0; i < n; i++) "
      "a[i] = i * 3; }");
  ASSERT_TRUE(C.ok());
  BytecodeCacheStats Before = bytecodeCacheStats();
  std::shared_ptr<const BytecodeProgram> P1 = compileBytecodeCached(*C.Fn);
  std::shared_ptr<const BytecodeProgram> P2 = compileBytecodeCached(*C.Fn);
  EXPECT_EQ(P1.get(), P2.get()) << "recompile must hit the cache";
  // A structurally identical recompile of the same source shares too.
  CompileResult C2 = compileFunction(
      "void uniq_cache_probe(int n, int *a) { for (int i = 0; i < n; i++) "
      "a[i] = i * 3; }");
  ASSERT_TRUE(C2.ok());
  EXPECT_EQ(compileBytecodeCached(*C2.Fn).get(), P1.get());
  BytecodeCacheStats After = bytecodeCacheStats();
  EXPECT_GE(After.Hits, Before.Hits + 2);
}

TEST(Bytecode, WorkCountersAreExact) {
  // n=8 copy loop: 8 scalar loads, 8 scalar stores, 9 loop-iter charges
  // (8 taken + 1 failing check), no branches.
  CompileResult C = compileFunction(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i]; }");
  ASSERT_TRUE(C.ok());
  MemoryImage M;
  M.Regions = {std::vector<int32_t>(16, 0), std::vector<int32_t>(16, 7)};
  ExecResult R = execBytecode(*compileBytecodeCached(*C.Fn), {8}, M);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Work.loads(), 8u);
  EXPECT_EQ(R.Work.stores(), 8u);
  EXPECT_EQ(R.Work.Hist[static_cast<size_t>(OpClass::LoopIter)], 9u);
  EXPECT_EQ(R.Work.Hist[static_cast<size_t>(OpClass::Branch)], 0u);
  EXPECT_GT(R.Work.Instrs, 0u);
}

//===----------------------------------------------------------------------===//
// Checksum harness: batch / memo / engine parity
//===----------------------------------------------------------------------===//

/// Everything a checksum verdict consists of, serialized for equality.
static std::string verdictString(const ChecksumOutcome &O) {
  return std::to_string(static_cast<int>(O.Verdict)) + "|" + O.Detail +
         "|" + O.FirstMismatch.Where + "|" +
         std::to_string(O.FirstMismatch.N) + "|" +
         std::to_string(O.FirstMismatch.Expected) + "|" +
         std::to_string(O.FirstMismatch.Actual) + "|" +
         O.FirstMismatch.TrapMsg;
}

ChecksumConfig fastChecksum(bool Bytecode) {
  ChecksumConfig C;
  C.RunsPerN = 1;
  C.NValues = {0, 8, 32};
  C.BufferLen = 128;
  C.UseBytecode = Bytecode;
  return C;
}

/// The s453 pair from the paper plus a trapping and a mis-signed
/// candidate: one scalar, four candidates covering all verdict shapes.
struct FixtureSet {
  VFunctionPtr Scalar;
  std::vector<VFunctionPtr> Cands;
};

static FixtureSet buildFixtures() {
  FixtureSet F;
  auto mk = [](const char *Src) {
    CompileResult C = compileFunction(Src);
    if (!C.ok())
      throw std::runtime_error("fixture compile failed: " + C.Error);
    return std::move(C.Fn);
  };
  F.Scalar = mk(R"(
    void s453(int *a, int *b, int n) {
      int s = 0;
      for (int i = 0; i < n; i++) {
        s += 2;
        a[i] = s * b[i];
      }
    })");
  // Good vectorization (plausible).
  F.Cands.push_back(mk(R"(
    void s453(int *a, int *b, int n) {
      __m256i s_vec = _mm256_setr_epi32(2, 4, 6, 8, 10, 12, 14, 16);
      __m256i two_vec = _mm256_set1_epi32(16);
      int i = 0;
      for (; i <= n - 8; i += 8) {
        __m256i b_vec = _mm256_loadu_si256((__m256i*)&b[i]);
        __m256i a_vec = _mm256_mullo_epi32(s_vec, b_vec);
        _mm256_storeu_si256((__m256i*)&a[i], a_vec);
        s_vec = _mm256_add_epi32(s_vec, two_vec);
      }
    })"));
  // Wrong induction (output mismatch).
  F.Cands.push_back(mk(R"(
    void s453(int *a, int *b, int n) {
      __m256i s_vec = _mm256_set1_epi32(2);
      int i = 0;
      for (; i <= n - 8; i += 8) {
        __m256i b_vec = _mm256_loadu_si256((__m256i*)&b[i]);
        _mm256_storeu_si256((__m256i*)&a[i],
                            _mm256_mullo_epi32(s_vec, b_vec));
      }
    })"));
  // Out-of-bounds (traps at the largest bound).
  F.Cands.push_back(mk(R"(
    void s453(int *a, int *b, int n) {
      for (int i = 0; i < n; i++) {
        int s = 2 * (i + 1);
        a[i + 1000] = s * b[i];
      }
    })"));
  // Signature mismatch.
  F.Cands.push_back(mk(R"(
    void s453(int *a, int *b, int m) {
      for (int i = 0; i < m; i++) a[i] = b[i];
    })"));
  return F;
}

TEST(ChecksumBatch, MatchesSequentialOnBothEngines) {
  FixtureSet F = buildFixtures();
  std::vector<const VFunction *> Cands;
  for (const VFunctionPtr &C : F.Cands)
    Cands.push_back(C.get());
  for (bool Bytecode : {false, true}) {
    ChecksumConfig Cfg = fastChecksum(Bytecode);
    ChecksumBatchResult Batch = runChecksumBatch(*F.Scalar, Cands, Cfg);
    ASSERT_EQ(Batch.Outcomes.size(), Cands.size());
    for (size_t I = 0; I < Cands.size(); ++I) {
      ChecksumOutcome Seq = runChecksumTest(*F.Scalar, *Cands[I], Cfg);
      EXPECT_EQ(verdictString(Batch.Outcomes[I]), verdictString(Seq))
          << "engine=" << Bytecode << " cand=" << I;
      // Candidate-side work is a pure function of the pair.
      EXPECT_TRUE(Batch.Outcomes[I].Work.Cand == Seq.Work.Cand);
      EXPECT_EQ(Batch.Outcomes[I].Work.CandRuns, Seq.Work.CandRuns);
    }
    // The batch ran the scalar once per input set — not once per
    // candidate per input set.
    EXPECT_EQ(Batch.ScalarRuns, Batch.InputSets);
    EXPECT_LE(Batch.ScalarRuns,
              Cfg.NValues.size() * static_cast<size_t>(Cfg.RunsPerN));
  }
}

TEST(ChecksumBatch, VerdictShapesCovered) {
  FixtureSet F = buildFixtures();
  std::vector<const VFunction *> Cands;
  for (const VFunctionPtr &C : F.Cands)
    Cands.push_back(C.get());
  ChecksumBatchResult B =
      runChecksumBatch(*F.Scalar, Cands, fastChecksum(true));
  EXPECT_EQ(B.Outcomes[0].Verdict, TestVerdict::Plausible);
  EXPECT_EQ(B.Outcomes[1].Verdict, TestVerdict::NotEquivalent);
  EXPECT_EQ(B.Outcomes[2].Verdict, TestVerdict::NotEquivalent);
  EXPECT_NE(B.Outcomes[2].FirstMismatch.TrapMsg.find("out-of-bounds"),
            std::string::npos);
  EXPECT_EQ(B.Outcomes[2].Work.CandTrap, TrapKind::OutOfBounds);
  EXPECT_EQ(B.Outcomes[3].Verdict, TestVerdict::NotEquivalent);
  EXPECT_NE(B.Outcomes[3].Detail.find("signature mismatch"),
            std::string::npos);
}

TEST(ChecksumMemo, ScalarReferenceReused) {
  FixtureSet F = buildFixtures();
  ChecksumConfig Cfg = fastChecksum(true);
  ScalarRefMemo Memo;
  ChecksumOutcome First =
      runChecksumTest(*F.Scalar, *F.Cands[0], Cfg, &Memo);
  EXPECT_GT(First.Work.ScalarRuns, 0u);
  EXPECT_EQ(First.Work.ScalarRunsSaved, 0u);
  ChecksumOutcome Second =
      runChecksumTest(*F.Scalar, *F.Cands[1], Cfg, &Memo);
  // Every reference for the second candidate came from the memo.
  EXPECT_EQ(Second.Work.ScalarRuns, 0u);
  EXPECT_GT(Second.Work.ScalarRunsSaved, 0u);
  // And the verdicts equal the memo-free runs.
  EXPECT_EQ(verdictString(Second),
            verdictString(runChecksumTest(*F.Scalar, *F.Cands[1], Cfg)));
  // Config change invalidates the memo instead of replaying stale runs.
  ChecksumConfig Cfg2 = Cfg;
  Cfg2.Seed ^= 0x77;
  ChecksumOutcome Third =
      runChecksumTest(*F.Scalar, *F.Cands[0], Cfg2, &Memo);
  EXPECT_GT(Third.Work.ScalarRuns, 0u);
  EXPECT_EQ(Third.Verdict, TestVerdict::Plausible);
}

TEST(ChecksumEngines, VerdictParityOverTsvcSamples) {
  // Sampled candidates over a corpus slice: the tree-walk and bytecode
  // engines must agree on every verdict, detail, and mismatch.
  llm::ClientFactory Factory = llm::simulatedClientFactory();
  int Compared = 0;
  for (const tsvc::TsvcTest *T : tsvc::suiteSample(7, 25)) {
    CompileResult SC = compileFunction(T->Source);
    ASSERT_TRUE(SC.ok()) << T->Name;
    std::unique_ptr<llm::LLMClient> Client = Factory(0xC60);
    llm::Prompt P;
    P.ScalarSource = T->Source;
    for (int K = 0; K < 4; ++K) {
      llm::Completion C = Client->complete(P, static_cast<uint64_t>(K));
      CompileResult VC = compileFunction(C.Source);
      if (!VC.ok() || C.Source.find("_mm256_") == std::string::npos)
        continue;
      ChecksumOutcome Tree =
          runChecksumTest(*SC.Fn, *VC.Fn, fastChecksum(false));
      ChecksumOutcome Bc =
          runChecksumTest(*SC.Fn, *VC.Fn, fastChecksum(true));
      EXPECT_EQ(verdictString(Tree), verdictString(Bc))
          << T->Name << " sample " << K;
      EXPECT_TRUE(Tree.Work.Cand == Bc.Work.Cand) << T->Name;
      ++Compared;
    }
  }
  EXPECT_GT(Compared, 25) << "corpus slice produced too few candidates";
}

//===----------------------------------------------------------------------===//
// Service routing: batch-vs-sequential parity at 1/2/8 workers
//===----------------------------------------------------------------------===//

TEST(ChecksumBatch, SvcSampleModeMatchesSequentialAtWorkerCounts) {
  // Classify K completions per test through the service (which batches)
  // at 1, 2, and 8 workers, and against the direct sequential tree-walk
  // path; all four must agree on every (test, sample) verdict.
  const int K = 3;
  ChecksumConfig SeqCfg = fastChecksum(false);
  ChecksumConfig SvcCfg = fastChecksum(true);

  auto classifyViaSvc = [&](int Workers) {
    svc::ServiceConfig SC;
    SC.Workers = Workers;
    svc::VectorizerService S(SC);
    std::vector<svc::Request> Batch;
    for (const tsvc::TsvcTest &T : tsvc::suite()) {
      svc::Request R;
      R.Mode = svc::RunMode::Sample;
      R.Name = T.Name;
      R.ScalarSource = T.Source;
      R.SampleCount = K;
      R.Fsm.Checksum = SvcCfg;
      Batch.push_back(std::move(R));
    }
    std::vector<svc::Ticket> Tickets = S.submitBatch(std::move(Batch));
    std::vector<std::vector<std::pair<std::string, bool>>> Out;
    for (svc::Ticket T : Tickets) {
      const svc::Outcome &O = S.wait(T);
      std::vector<std::pair<std::string, bool>> Rows;
      for (const svc::SampleVerdict &V : O.Samples)
        Rows.emplace_back(V.Source, V.Plausible);
      Out.push_back(std::move(Rows));
    }
    return Out;
  };

  auto One = classifyViaSvc(1);
  auto Two = classifyViaSvc(2);
  auto Eight = classifyViaSvc(8);
  ASSERT_EQ(One.size(), tsvc::suite().size());
  EXPECT_EQ(One, Two);
  EXPECT_EQ(One, Eight);

  // Direct sequential classification (seed engine, one candidate at a
  // time, no batching, no cache) must agree sample by sample.
  llm::ClientFactory Factory = llm::simulatedClientFactory();
  for (size_t TI = 0; TI < tsvc::suite().size(); ++TI) {
    const tsvc::TsvcTest &T = tsvc::suite()[TI];
    CompileResult SC = compileFunction(T.Source);
    std::unique_ptr<llm::LLMClient> Client = Factory(0xC60);
    llm::Prompt P;
    P.ScalarSource = T.Source;
    ASSERT_EQ(One[TI].size(), static_cast<size_t>(K)) << T.Name;
    for (int I = 0; I < K; ++I) {
      llm::Completion C = Client->complete(P, static_cast<uint64_t>(I));
      ASSERT_EQ(One[TI][static_cast<size_t>(I)].first, C.Source)
          << T.Name << " sample " << I;
      bool Plausible = false;
      CompileResult VC = compileFunction(C.Source);
      if (VC.ok() && SC.ok() &&
          C.Source.find("_mm256_") != std::string::npos)
        Plausible = runChecksumTest(*SC.Fn, *VC.Fn, SeqCfg).Verdict ==
                    TestVerdict::Plausible;
      EXPECT_EQ(One[TI][static_cast<size_t>(I)].second, Plausible)
          << T.Name << " sample " << I;
    }
  }
}

} // namespace
