//===- tests/test_llm.cpp - simulated-LLM tests --------------------------------===//
//
// Tests for the rule-based vectorizer strategies, the fault injection
// catalog, and the competence model's determinism and difficulty tiers.
// Strategy correctness is validated semantically: clean-plan outputs must
// be checksum-plausible against the scalar source.
//
//===----------------------------------------------------------------------===//

#include "interp/Checksum.h"
#include "llm/Client.h"
#include "llm/Vectorizer.h"
#include "minic/Parser.h"
#include "minic/Printer.h"
#include "vir/Compile.h"

#include <gtest/gtest.h>

using namespace lv;
using namespace lv::llm;

namespace {

/// Clean-plan vectorization must compile and be checksum-plausible.
static void expectCleanVectorization(const char *ScalarSrc,
                                     const char *ExpectStrategy = nullptr) {
  minic::ParseResult P = minic::parseFunction(ScalarSrc);
  ASSERT_TRUE(P.ok()) << P.Error;
  GenResult G = vectorizeFunction(*P.Fn, FaultPlan());
  ASSERT_TRUE(G.Fn != nullptr) << "no strategy for:\n" << ScalarSrc;
  EXPECT_TRUE(G.SoundByConstruction);
  if (ExpectStrategy)
    EXPECT_EQ(G.Strategy, ExpectStrategy);
  std::string VecSrc = minic::printFunction(*G.Fn);
  SCOPED_TRACE("generated:\n" + VecSrc);
  EXPECT_NE(VecSrc.find("_mm256_"), std::string::npos);

  vir::CompileResult SC = vir::compileFunction(ScalarSrc);
  ASSERT_TRUE(SC.ok()) << SC.Error;
  vir::CompileResult VC = vir::compileFunction(VecSrc);
  ASSERT_TRUE(VC.ok()) << VC.Error << "\n" << VecSrc;
  interp::ChecksumOutcome O = interp::runChecksumTest(*SC.Fn, *VC.Fn);
  EXPECT_EQ(O.Verdict, interp::TestVerdict::Plausible) << O.Detail;
}

TEST(Vectorizer, PlainWiden) {
  expectCleanVectorization(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] * 3 + 1; }",
      "widen");
}

TEST(Vectorizer, OffsetReads) {
  expectCleanVectorization(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i + 2] - b[i]; }");
}

TEST(Vectorizer, CompoundAssignment) {
  expectCleanVectorization(
      "void f(int n, int *a, int *c) { for (int i = 0; i < n; i++) "
      "a[i] *= c[i]; }");
}

TEST(Vectorizer, S212ReorderedPreload) {
  expectCleanVectorization(R"(
    void s212(int n, int *a, int *b, int *c, int *d) {
      for (int i = 0; i < n - 1; i++) {
        a[i] *= c[i];
        b[i] += a[i + 1] * d[i];
      }
    })");
}

TEST(Vectorizer, IfConversionWithMaskedOps) {
  expectCleanVectorization(R"(
    void f(int n, int *a, int *b, int *c) {
      for (int i = 0; i < n; i++) {
        if (b[i] > 0)
          a[i] = b[i] + c[i];
      }
    })");
}

TEST(Vectorizer, IfElseBothArms) {
  expectCleanVectorization(R"(
    void f(int n, int *a, int *b, int *c) {
      for (int i = 0; i < n; i++) {
        if (b[i] > 0)
          a[i] = b[i];
        else
          a[i] = c[i];
      }
    })");
}

TEST(Vectorizer, TernaryBlend) {
  expectCleanVectorization(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] > 0 ? b[i] : -b[i]; }");
}

TEST(Vectorizer, Reduction) {
  expectCleanVectorization(
      "int f(int n, int *a) { int sum = 0; for (int i = 0; i < n; i++) "
      "sum += a[i]; return sum; }",
      "reduction");
}

TEST(Vectorizer, InductionRamp) {
  expectCleanVectorization(R"(
    void s453(int *a, int *b, int n) {
      int s = 0;
      for (int i = 0; i < n; i++) {
        s += 2;
        a[i] = s * b[i];
      }
    })");
}

TEST(Vectorizer, GotoRestructuring) {
  expectCleanVectorization(R"(
    void s278(int n, int *a, int *b, int *c, int *d, int *e) {
      for (int i = 0; i < n; i++) {
        if (a[i] > 0) {
          goto L20;
        }
        b[i] = -b[i] + d[i] * e[i];
        goto L30;
L20:
        c[i] = -c[i] + d[i] * e[i];
L30:
        a[i] = b[i] + c[i] * d[i];
      }
    })");
}

TEST(Vectorizer, GuardedInductionS124) {
  expectCleanVectorization(R"(
    void s124(int *a, int *b, int *c, int *d, int *e, int n) {
      int j;
      j = -1;
      for (int i = 0; i < n; i++) {
        if (b[i] > 0) {
          j++;
          a[j] = b[i] + d[i] * e[i];
        } else {
          j++;
          a[j] = c[i] + d[i] * e[i];
        }
      }
    })");
}

TEST(Vectorizer, AbsMinMaxCalls) {
  expectCleanVectorization(
      "void f(int n, int *a, int *b, int *c) { for (int i = 0; i < n; i++) "
      "a[i] = max(abs(b[i]), min(c[i], 100)); }");
}

TEST(Vectorizer, RefusesTrueRecurrence) {
  minic::ParseResult P = minic::parseFunction(
      "void f(int n, int *a, int *b) { for (int i = 1; i < n; i++) "
      "a[i] = a[i - 1] + b[i]; }");
  ASSERT_TRUE(P.ok());
  GenResult G = vectorizeFunction(*P.Fn, FaultPlan());
  EXPECT_EQ(G.Fn, nullptr) << "sound strategies must refuse recurrences";
  // Naive mode produces wrong-but-compiling code instead.
  GenResult N = vectorizeFunction(*P.Fn, FaultPlan(), /*ForceNaive=*/true);
  ASSERT_NE(N.Fn, nullptr);
  EXPECT_FALSE(N.SoundByConstruction);
  vir::CompileResult VC =
      vir::compileFunction(minic::printFunction(*N.Fn));
  EXPECT_TRUE(VC.ok()) << VC.Error;
}

TEST(Vectorizer, RefusesIndirectAccess) {
  minic::ParseResult P = minic::parseFunction(
      "void f(int n, int *a, int *b, int *ix) { "
      "for (int i = 0; i < n; i++) a[ix[i]] = b[i]; }");
  ASSERT_TRUE(P.ok());
  GenResult G = vectorizeFunction(*P.Fn, FaultPlan());
  EXPECT_EQ(G.Fn, nullptr);
}

/// Faults must produce compiling-but-wrong candidates (checksum-refutable
/// or verification-refutable).
static interp::TestVerdict checksumVerdictWithFault(const char *ScalarSrc,
                                                    Fault F) {
  minic::ParseResult P = minic::parseFunction(ScalarSrc);
  EXPECT_TRUE(P.ok());
  FaultPlan Plan;
  Plan.Active.push_back(F);
  GenResult G = vectorizeFunction(*P.Fn, Plan);
  if (!G.Fn)
    return interp::TestVerdict::Error;
  vir::CompileResult SC = vir::compileFunction(ScalarSrc);
  vir::CompileResult VC =
      vir::compileFunction(minic::printFunction(*G.Fn));
  EXPECT_TRUE(SC.ok());
  if (!VC.ok())
    return interp::TestVerdict::Error;
  return interp::runChecksumTest(*SC.Fn, *VC.Fn).Verdict;
}

TEST(Faults, WrongInductionInitCaughtByChecksum) {
  EXPECT_EQ(checksumVerdictWithFault(
                R"(void s453(int *a, int *b, int n) {
                     int s = 0;
                     for (int i = 0; i < n; i++) { s += 2; a[i] = s * b[i]; }
                   })",
                Fault::WrongInductionInit),
            interp::TestVerdict::NotEquivalent);
}

TEST(Faults, BadBoundOverrunsOrMismatches) {
  interp::TestVerdict V = checksumVerdictWithFault(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }",
      Fault::BadBound);
  // i < n with step 8 overruns for n not a multiple of 8; with our
  // multiple-of-8 harness bounds it still matches — either verdict must be
  // NotEquivalent or Plausible-but-UB; the checksum harness's larger n
  // values keep it Plausible. Accept both, but the candidate must compile.
  EXPECT_NE(V, interp::TestVerdict::Error);
}

TEST(Faults, SpeculativeLoadStaysChecksumPlausible) {
  // The s124 phenomenon: the fault is invisible to testing.
  EXPECT_EQ(checksumVerdictWithFault(
                R"(void f(int n, int *a, int *b, int *c) {
                     for (int i = 0; i < n; i++) {
                       if (b[i] > 0)
                         a[i] = b[i];
                       else
                         a[i] = c[i];
                     }
                   })",
                Fault::SpeculativeLoad),
            interp::TestVerdict::Plausible);
}

TEST(Faults, DropStatementCaught) {
  EXPECT_EQ(checksumVerdictWithFault(
                R"(void f(int n, int *a, int *b, int *c, int *d) {
                     for (int i = 0; i < n; i++) {
                       a[i] = b[i] + 1;
                       c[i] = d[i] * 2;
                     }
                   })",
                Fault::DropStatement),
            interp::TestVerdict::NotEquivalent);
}

TEST(Client, DeterministicCompletions) {
  SimulatedLLM M(42);
  Prompt P;
  P.ScalarSource =
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }";
  Completion C1 = M.complete(P, 3);
  Completion C2 = M.complete(P, 3);
  EXPECT_EQ(C1.Source, C2.Source);
  Completion C3 = M.complete(P, 4);
  // Different sample index: may differ (not required, but the stream must
  // be independent); just ensure both are non-empty.
  EXPECT_FALSE(C1.Source.empty());
  EXPECT_FALSE(C3.Source.empty());
}

TEST(Client, DifficultyTiers) {
  EXPECT_EQ(SimulatedLLM::classifyDifficulty(
                "void f(int n, int *a, int *b) { for (int i = 0; i < n; "
                "i++) a[i] = b[i] + 1; }"),
            Difficulty::Easy);
  EXPECT_EQ(SimulatedLLM::classifyDifficulty(
                "void f(int n, int *a, int *b) { for (int i = 1; i < n; "
                "i++) a[i] = a[i - 1] + b[i]; }"),
            Difficulty::Never);
  Difficulty D = SimulatedLLM::classifyDifficulty(R"(
      int f(int n, int *a, int *b) {
        int sum = 0;
        for (int i = 0; i < n; i++) {
          if (b[i] > 0)
            sum += a[i];
        }
        return sum;
      })");
  EXPECT_NE(D, Difficulty::Easy);
  EXPECT_NE(D, Difficulty::Never);
}

TEST(Client, FeedbackImprovesSuccessOdds) {
  // Statistical test over many samples: with failure feedback, the rate of
  // clean (fault-free) completions must rise.
  SimulatedLLM M(7);
  Prompt Base;
  Base.ScalarSource = R"(
    void s453(int *a, int *b, int n) {
      int s = 0;
      for (int i = 0; i < n; i++) { s += 2; a[i] = s * b[i]; }
    })";
  Prompt WithFB = Base;
  WithFB.FailureFeedback.push_back(
      "output mismatch at n=8, array 'a' index 0: expected 2, got 4");
  int CleanBase = 0, CleanFB = 0;
  const int N = 120;
  for (int I = 0; I < N; ++I) {
    if (M.complete(Base, static_cast<uint64_t>(I)).Rationale.find(
            "faults=none") != std::string::npos)
      ++CleanBase;
    if (M.complete(WithFB, static_cast<uint64_t>(I)).Rationale.find(
            "faults=none") != std::string::npos)
      ++CleanFB;
  }
  EXPECT_GT(CleanFB, CleanBase);
}

} // namespace
