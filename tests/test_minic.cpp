//===- tests/test_minic.cpp - frontend unit tests --------------------------===//
//
// Unit tests for the mini-C lexer, parser, printer and Sema, using the
// paper's own code listings (s212, s124, s453) as fixtures.
//
//===----------------------------------------------------------------------===//

#include "minic/Lexer.h"
#include "minic/Parser.h"
#include "minic/Printer.h"
#include "minic/Sema.h"

#include <gtest/gtest.h>

using namespace lv;
using namespace lv::minic;

namespace {

const char *S212Scalar = R"(
void s212(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n - 1; i++) {
    a[i] *= c[i];
    b[i] += a[i + 1] * d[i];
  }
}
)";

const char *S212Vector = R"(
#include <immintrin.h>
void s212(int n, int *a, int *b, int *c, int *d) {
  int i;
  __m256i a_vec, b_vec, c_vec, a_next_vec, d_vec, prod_vec, sum_vec;
  for (i = 0; i < n - 1 - (n - 1) % 8; i += 8) {
    a_vec = _mm256_loadu_si256((__m256i *)&a[i]);
    b_vec = _mm256_loadu_si256((__m256i *)&b[i]);
    c_vec = _mm256_loadu_si256((__m256i *)&c[i]);
    a_next_vec = _mm256_loadu_si256((__m256i *)&a[i + 1]);
    d_vec = _mm256_loadu_si256((__m256i *)&d[i]);
    prod_vec = _mm256_mullo_epi32(a_vec, c_vec);
    _mm256_storeu_si256((__m256i *)&a[i], prod_vec);
    prod_vec = _mm256_mullo_epi32(a_next_vec, d_vec);
    sum_vec = _mm256_add_epi32(b_vec, prod_vec);
    _mm256_storeu_si256((__m256i *)&b[i], sum_vec);
  }
  for (; i < n - 1; i++) {
    a[i] *= c[i];
    b[i] += a[i + 1] * d[i];
  }
}
)";

const char *S453Vector = R"(
void s453(int *a, int *b, int n) {
  __m256i s_vec = _mm256_setr_epi32(2, 4, 6, 8, 10, 12, 14, 16);
  __m256i two_vec = _mm256_set1_epi32(16);
  int i = 0;
  for (; i <= n - 8; i += 8) {
    __m256i b_vec = _mm256_loadu_si256((__m256i*)&b[i]);
    __m256i a_vec = _mm256_mullo_epi32(s_vec, b_vec);
    _mm256_storeu_si256((__m256i*)&a[i], a_vec);
    s_vec = _mm256_add_epi32(s_vec, two_vec);
  }
}
)";

const char *S278Goto = R"(
void s278(int n, int *a, int *b, int *c, int *d, int *e) {
  for (int i = 0; i < n; i++) {
    if (a[i] > 0) {
      goto L20;
    }
    b[i] = -b[i] + d[i] * e[i];
    goto L30;
L20:
    c[i] = -c[i] + d[i] * e[i];
L30:
    a[i] = b[i] + c[i] * d[i];
  }
}
)";

TEST(Lexer, BasicTokens) {
  std::string Err;
  auto Toks = lex("for (int i = 0; i < n; i++) a[i] += 2;", Err);
  EXPECT_TRUE(Err.empty());
  ASSERT_GE(Toks.size(), 10u);
  EXPECT_EQ(Toks[0].K, Tok::KwFor);
  EXPECT_EQ(Toks[1].K, Tok::LParen);
  EXPECT_EQ(Toks[2].K, Tok::KwInt);
  EXPECT_EQ(Toks[3].K, Tok::Ident);
  EXPECT_EQ(Toks[3].Text, "i");
  EXPECT_EQ(Toks.back().K, Tok::Eof);
}

TEST(Lexer, SkipsPreprocessorAndComments) {
  std::string Err;
  auto Toks = lex("#include <immintrin.h>\n// c\n/* block */ int x;", Err);
  EXPECT_TRUE(Err.empty());
  ASSERT_GE(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].K, Tok::KwInt);
}

TEST(Lexer, HexAndSuffixes) {
  std::string Err;
  auto Toks = lex("0xFF 10u 5L", Err);
  EXPECT_TRUE(Err.empty());
  EXPECT_EQ(Toks[0].Value, 255);
  EXPECT_EQ(Toks[1].Value, 10);
  EXPECT_EQ(Toks[2].Value, 5);
}

TEST(Lexer, ThreeCharOperators) {
  std::string Err;
  auto Toks = lex("a <<= 2; b >>= 1;", Err);
  EXPECT_TRUE(Err.empty());
  EXPECT_EQ(Toks[1].K, Tok::ShlEq);
  EXPECT_EQ(Toks[5].K, Tok::ShrEq);
}

TEST(Lexer, ReportsBadCharacter) {
  std::string Err;
  lex("int x = @;", Err);
  EXPECT_NE(Err.find("unexpected character"), std::string::npos);
}

TEST(Parser, ParsesS212Scalar) {
  ParseResult R = parseFunction(S212Scalar);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Fn->Name, "s212");
  ASSERT_EQ(R.Fn->Params.size(), 5u);
  EXPECT_EQ(R.Fn->Params[0].Ty.K, Type::Int);
  EXPECT_EQ(R.Fn->Params[1].Ty.K, Type::IntPtr);
  ASSERT_EQ(R.Fn->BodyBlock->Body.size(), 1u);
  EXPECT_EQ(R.Fn->BodyBlock->Body[0]->K, Stmt::For);
}

TEST(Parser, ParsesS212Vector) {
  ParseResult R = parseFunction(S212Vector);
  ASSERT_TRUE(R.ok()) << R.Error;
  // int i; __m256i decls; two for loops.
  EXPECT_EQ(R.Fn->BodyBlock->Body.size(), 4u);
  const Stmt &VecDecl = *R.Fn->BodyBlock->Body[1];
  EXPECT_EQ(VecDecl.K, Stmt::Decl);
  EXPECT_EQ(VecDecl.DeclTy.K, Type::M256i);
  EXPECT_EQ(VecDecl.Decls.size(), 7u);
}

TEST(Parser, ParsesGotoAndLabels) {
  ParseResult R = parseFunction(S278Goto);
  ASSERT_TRUE(R.ok()) << R.Error;
  SemaResult S = checkFunction(*R.Fn);
  EXPECT_TRUE(S.ok()) << S.Error;
}

TEST(Parser, RejectsMissingSemicolon) {
  ParseResult R = parseFunction("void f(int n) { n = 1 }");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("expected ';'"), std::string::npos);
}

TEST(Parser, RejectsUnbalancedParens) {
  ParseResult R = parseFunction("void f(int n) { if (n > 0 { n = 1; } }");
  EXPECT_FALSE(R.ok());
}

TEST(Parser, TernaryAndPrecedence) {
  ParseResult R =
      parseFunction("int f(int a, int b) { return a > b ? a + 1 : b * 2; }");
  ASSERT_TRUE(R.ok()) << R.Error;
  const Stmt &Ret = *R.Fn->BodyBlock->Body[0];
  ASSERT_EQ(Ret.K, Stmt::Return);
  EXPECT_EQ(Ret.Cond->K, Expr::Ternary);
}

TEST(Parser, CommaInForStep) {
  ParseResult R = parseFunction(
      "void f(int n, int *a) { int j = 0; "
      "for (int i = 0; i < n; i++, j += 2) a[i] = j; }");
  ASSERT_TRUE(R.ok()) << R.Error;
}

TEST(Parser, LocalArrayDeclarator) {
  ParseResult R = parseFunction("void f(void) { int tmp[8]; tmp[0] = 1; }");
  ASSERT_TRUE(R.ok()) << R.Error;
  const Stmt &D = *R.Fn->BodyBlock->Body[0];
  ASSERT_EQ(D.K, Stmt::Decl);
  EXPECT_EQ(D.Decls[0].ArraySize, 8);
}

TEST(Parser, RestrictPointersAccepted) {
  ParseResult R =
      parseFunction("void f(int n, int * restrict a) { a[0] = n; }");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Fn->Params[1].Ty.K, Type::IntPtr);
}

/// Printing then reparsing then printing again must be a fixed point.
static void expectRoundTrip(const char *Source) {
  ParseResult R1 = parseFunction(Source);
  ASSERT_TRUE(R1.ok()) << R1.Error;
  std::string P1 = printFunction(*R1.Fn);
  ParseResult R2 = parseFunction(P1);
  ASSERT_TRUE(R2.ok()) << "reparse failed:\n" << P1 << "\n" << R2.Error;
  std::string P2 = printFunction(*R2.Fn);
  EXPECT_EQ(P1, P2) << "printer not a fixed point for:\n" << Source;
}

TEST(Printer, RoundTripS212Scalar) { expectRoundTrip(S212Scalar); }
TEST(Printer, RoundTripS212Vector) { expectRoundTrip(S212Vector); }
TEST(Printer, RoundTripS453Vector) { expectRoundTrip(S453Vector); }
TEST(Printer, RoundTripGoto) { expectRoundTrip(S278Goto); }

TEST(Printer, ParenthesizesPrecedence) {
  ParseResult R = parseFunction("int f(int a, int b) { return (a + b) * 2; }");
  ASSERT_TRUE(R.ok()) << R.Error;
  std::string P = printFunction(*R.Fn);
  EXPECT_NE(P.find("(a + b) * 2"), std::string::npos) << P;
}

TEST(Printer, CloneProducesIdenticalText) {
  ParseResult R = parseFunction(S212Vector);
  ASSERT_TRUE(R.ok()) << R.Error;
  FunctionPtr C = R.Fn->clone();
  EXPECT_EQ(printFunction(*R.Fn), printFunction(*C));
}

TEST(Sema, AcceptsPaperListings) {
  for (const char *Src : {S212Scalar, S212Vector, S453Vector}) {
    ParseResult R = parseFunction(Src);
    ASSERT_TRUE(R.ok()) << R.Error;
    SemaResult S = checkFunction(*R.Fn);
    EXPECT_TRUE(S.ok()) << S.Error;
  }
}

TEST(Sema, RejectsUndeclaredVariable) {
  ParseResult R = parseFunction("void f(int n) { x = n; }");
  ASSERT_TRUE(R.ok());
  SemaResult S = checkFunction(*R.Fn);
  EXPECT_NE(S.Error.find("undeclared identifier 'x'"), std::string::npos);
}

TEST(Sema, RejectsUnknownIntrinsic) {
  ParseResult R = parseFunction(
      "void f(int *a) { __m256i v = _mm256_bogus_epi32(a); }");
  ASSERT_TRUE(R.ok());
  SemaResult S = checkFunction(*R.Fn);
  EXPECT_NE(S.Error.find("unknown function"), std::string::npos);
}

TEST(Sema, RejectsIntrinsicArityMismatch) {
  ParseResult R = parseFunction(
      "void f(__m256i v) { __m256i w = _mm256_add_epi32(v); }");
  ASSERT_TRUE(R.ok());
  SemaResult S = checkFunction(*R.Fn);
  EXPECT_NE(S.Error.find("expects 2 arguments"), std::string::npos);
}

TEST(Sema, RejectsVectorScalarMix) {
  ParseResult R = parseFunction("void f(__m256i v, int n) { n = n + v; }");
  ASSERT_TRUE(R.ok());
  SemaResult S = checkFunction(*R.Fn);
  EXPECT_FALSE(S.ok());
}

TEST(Sema, RejectsGotoUnknownLabel) {
  ParseResult R = parseFunction("void f(int n) { goto L1; n = 0; }");
  ASSERT_TRUE(R.ok());
  SemaResult S = checkFunction(*R.Fn);
  EXPECT_NE(S.Error.find("unknown label"), std::string::npos);
}

TEST(Sema, RejectsBreakOutsideLoop) {
  ParseResult R = parseFunction("void f(int n) { break; }");
  ASSERT_TRUE(R.ok());
  SemaResult S = checkFunction(*R.Fn);
  EXPECT_NE(S.Error.find("outside of a loop"), std::string::npos);
}

TEST(Sema, RejectsRedeclaration) {
  ParseResult R = parseFunction("void f(int n) { int n = 0; n = n; }");
  ASSERT_TRUE(R.ok());
  SemaResult S = checkFunction(*R.Fn);
  EXPECT_NE(S.Error.find("redeclaration"), std::string::npos);
}

TEST(Sema, AllowsShadowingInInnerScope) {
  ParseResult R =
      parseFunction("void f(int n) { { int m = n; m = m + 1; } }");
  ASSERT_TRUE(R.ok());
  SemaResult S = checkFunction(*R.Fn);
  EXPECT_TRUE(S.ok()) << S.Error;
}

TEST(Sema, TypesAreAnnotated) {
  ParseResult R = parseFunction("void f(int *a, int i) { a[i] = i + 1; }");
  ASSERT_TRUE(R.ok());
  SemaResult S = checkFunction(*R.Fn);
  ASSERT_TRUE(S.ok()) << S.Error;
  const Stmt &St = *R.Fn->BodyBlock->Body[0];
  ASSERT_EQ(St.K, Stmt::ExprSt);
  EXPECT_EQ(St.Cond->Ty.K, Type::Int);
  EXPECT_EQ(St.Cond->Kids[0]->K, Expr::Index);
  EXPECT_EQ(St.Cond->Kids[0]->Kids[0]->Ty.K, Type::IntPtr);
}

} // namespace
