//===- tests/test_obs.cpp - observability spine tests -------------------------===//
//
// The obs contract: (1) spans nest and order correctly and the recorded
// event multiset is bit-identical at any svc worker count; (2) the metrics
// counters aggregate exactly — concurrent increments never lose updates,
// and the interp.* counters reproduce the StageInterpWork tallies svc
// aggregates from the same checksum runs; (3) disabled mode records
// nothing while still feeding the duration outputs the EquivResult nanos
// fields are sourced from; (4) both exported JSON documents are
// well-formed per the depth-limited RFC 8259 validator, which itself
// rejects the classic malformed inputs.
//
//===----------------------------------------------------------------------===//

#include "obs/Flight.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "svc/Service.h"
#include "tsvc/Suite.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

using namespace lv;

namespace {

/// Busy-waits until the trace clock advances so a span around this is
/// guaranteed a nonzero duration.
void spinOneTick() {
  uint64_t T0 = obs::traceClockNanos();
  while (obs::traceClockNanos() == T0) {
  }
}

/// Scoped tracing enable: tests must never leak a tracing state change
/// into later tests in the same binary.
struct ScopedTracing {
  explicit ScopedTracing(bool On) : Prev(obs::tracingEnabled()) {
    obs::resetTrace();
    obs::setTracingEnabled(On);
  }
  ~ScopedTracing() {
    obs::setTracingEnabled(Prev);
    obs::resetTrace();
  }
  bool Prev;
};

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

TEST(Trace, SpanNestingDepthAndContainment) {
  ScopedTracing On(true);
  uint64_t OuterNs = 0;
  {
    obs::Span Outer("test", "outer", &OuterNs);
    Outer.arg("k", 41);
    Outer.argStr("who", "outer-span");
    {
      obs::Span Inner("test", "inner");
      Inner.arg("k", 1);
      spinOneTick();
    }
    {
      obs::Span Inner("test", "inner");
      Inner.arg("k", 2);
      spinOneTick();
    }
  }
  std::vector<obs::TraceEvent> Events = obs::snapshotTrace();
  ASSERT_EQ(Events.size(), 3u);
  std::sort(Events.begin(), Events.end(),
            [](const obs::TraceEvent &A, const obs::TraceEvent &B) {
              return A.StartNs < B.StartNs;
            });
  const obs::TraceEvent &Outer = Events[0];
  EXPECT_STREQ(Outer.Name, "outer");
  EXPECT_STREQ(Outer.Cat, "test");
  EXPECT_EQ(Outer.Depth, 0u);
  ASSERT_EQ(Outer.Args.size(), 1u);
  EXPECT_STREQ(Outer.Args[0].Key, "k");
  EXPECT_EQ(Outer.Args[0].Val, 41u);
  ASSERT_EQ(Outer.StrArgs.size(), 1u);
  EXPECT_EQ(Outer.StrArgs[0].Val, "outer-span");
  EXPECT_GT(Outer.DurNs, 0u);
  EXPECT_EQ(OuterNs, Outer.DurNs);
  for (size_t I = 1; I < 3; ++I) {
    const obs::TraceEvent &Inner = Events[I];
    EXPECT_STREQ(Inner.Name, "inner");
    EXPECT_EQ(Inner.Depth, 1u) << "nested span depth";
    EXPECT_EQ(Inner.Tid, Outer.Tid) << "same thread";
    // Containment on the shared monotonic clock.
    EXPECT_GE(Inner.StartNs, Outer.StartNs);
    EXPECT_LE(Inner.StartNs + Inner.DurNs, Outer.StartNs + Outer.DurNs);
  }
  // The two inner spans are ordered and disjoint.
  EXPECT_GE(Events[2].StartNs, Events[1].StartNs + Events[1].DurNs);
}

TEST(Trace, DisabledModeRecordsNothingButFeedsDurations) {
  ScopedTracing Off(false);
  uint64_t Ns = 0;
  {
    obs::Span S("test", "untraced", &Ns);
    EXPECT_FALSE(S.active());
    S.arg("k", 1);               // must be a no-op, not a crash
    S.argStr("who", "nobody");   // ditto — and must not allocate a copy
    spinOneTick();
  }
  EXPECT_GT(Ns, 0u) << "DurOut accumulates even with tracing off";
  {
    obs::Span S("test", "untraced-no-dur");
    EXPECT_FALSE(S.active());
  }
  EXPECT_TRUE(obs::snapshotTrace().empty());
  EXPECT_EQ(obs::traceStats().Events, 0u);
}

TEST(Trace, DurOutAccumulatesAcrossSpans) {
  ScopedTracing Off(false);
  uint64_t Ns = 0;
  for (int I = 0; I < 3; ++I) {
    obs::Span S("test", "accum", &Ns);
    spinOneTick();
  }
  uint64_t After3 = Ns;
  {
    obs::Span S("test", "accum", &Ns);
    spinOneTick();
  }
  EXPECT_GT(After3, 0u);
  EXPECT_GT(Ns, After3) << "+= semantics, not overwrite";
}

TEST(Trace, ChromeJsonIsValidAndRebased) {
  ScopedTracing On(true);
  {
    obs::Span S("test", "alpha");
    S.argStr("msg", "quote \" backslash \\ newline \n tab \t");
    spinOneTick();
  }
  std::string Doc = obs::traceChromeJson();
  std::string Err;
  std::vector<std::string> Keys;
  EXPECT_TRUE(obs::json::validate(Doc, &Err, &Keys)) << Err;
  ASSERT_EQ(Keys.size(), 1u);
  EXPECT_EQ(Keys[0], "traceEvents");
  // Rebased: the earliest event starts at ts 0.
  EXPECT_NE(Doc.find("\"ts\": 0.000"), std::string::npos);
}

/// Serializes the fields of an event that must be identical across worker
/// counts (everything but timing and thread placement).
std::string eventKey(const obs::TraceEvent &Ev) {
  std::string K = std::string(Ev.Cat) + "|" + Ev.Name + "|d" +
                  std::to_string(Ev.Depth);
  for (const obs::TraceArg &A : Ev.Args)
    K += std::string("|") + A.Key + "=" + std::to_string(A.Val);
  for (const obs::TraceStrArg &A : Ev.StrArgs)
    K += std::string("|") + A.Key + "=" + A.Val;
  return K;
}

interp::ChecksumConfig fastChecksum() {
  interp::ChecksumConfig C;
  C.RunsPerN = 1;
  C.NValues = {0, 8, 32};
  C.BufferLen = 128;
  return C;
}

core::EquivConfig fastEquiv() {
  core::EquivConfig Cfg;
  Cfg.Checksum = fastChecksum();
  Cfg.ScalarMax = 4;
  Cfg.MaxTerms = 30'000;
  Cfg.Alive2Budget = 100;
  Cfg.CUnrollBudget = 200;
  Cfg.SplitBudget = 50;
  return Cfg;
}

/// Verify-mode batch over a small TSVC slice (candidate == scalar, so the
/// funnel does real checksum + solver work on every task).
std::vector<svc::Request> sliceBatch(size_t N) {
  std::vector<svc::Request> Out;
  for (size_t I = 0; I < N && I < tsvc::suite().size(); ++I) {
    const tsvc::TsvcTest &T = tsvc::suite()[I];
    svc::Request R;
    R.Mode = svc::RunMode::Verify;
    R.Name = T.Name;
    R.ScalarSource = T.Source;
    R.CandidateSource = T.Source;
    R.Equiv = fastEquiv();
    Out.push_back(std::move(R));
  }
  return Out;
}

std::vector<std::string> tracedSliceKeys(int Workers, size_t N) {
  ScopedTracing On(true);
  svc::ServiceConfig SC;
  SC.Workers = Workers;
  SC.EnableVerdictCache = false; // replays would skip the traced work
  svc::VectorizerService S(SC);
  std::vector<svc::Ticket> Tickets = S.submitBatch(sliceBatch(N));
  for (svc::Ticket T : Tickets)
    (void)S.wait(T);
  std::vector<obs::TraceEvent> Events = obs::snapshotTrace();
  std::vector<std::string> Keys;
  Keys.reserve(Events.size());
  for (const obs::TraceEvent &Ev : Events)
    Keys.push_back(eventKey(Ev));
  std::sort(Keys.begin(), Keys.end());
  return Keys;
}

TEST(Trace, EventMultisetIdenticalAcrossWorkerCounts) {
  const size_t N = 6;
  std::vector<std::string> One = tracedSliceKeys(1, N);
  std::vector<std::string> Two = tracedSliceKeys(2, N);
  std::vector<std::string> Eight = tracedSliceKeys(8, N);
  ASSERT_FALSE(One.empty());
  // Every task contributes at least its task.verify span and the
  // stage.checksum span.
  EXPECT_GE(One.size(), 2 * N);
  EXPECT_EQ(One, Two) << "1-vs-2 worker span divergence";
  EXPECT_EQ(One, Eight) << "1-vs-8 worker span divergence";
}

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

TEST(Metrics, CounterConcurrentIncrementsAreExact) {
  obs::Counter &C = obs::counter("test.concurrent");
  C.reset();
  constexpr int Threads = 8, PerThread = 100'000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&C] {
      for (int I = 0; I < PerThread; ++I)
        C.inc();
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(C.value(), uint64_t(Threads) * PerThread);
  // Same name returns the same instrument.
  EXPECT_EQ(&C, &obs::counter("test.concurrent"));
  EXPECT_EQ(obs::counterValue("test.concurrent"), C.value());
}

TEST(Metrics, HistogramBucketsAndConcurrency) {
  obs::Histogram &H = obs::histogram("test.hist");
  H.reset();
  H.observe(1);    // < 2        -> bucket 0
  H.observe(3);    // [2, 4)     -> bucket 1
  H.observe(1024); // [1024, 2048) -> bucket 10
  EXPECT_EQ(H.count(), 3u);
  EXPECT_EQ(H.sum(), 1028u);
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 1u);
  EXPECT_EQ(H.bucket(10), 1u);
  EXPECT_EQ(obs::Histogram::bucketBound(0), 2u);
  EXPECT_EQ(obs::Histogram::bucketBound(10), 2048u);
  EXPECT_EQ(obs::Histogram::bucketBound(obs::Histogram::NumBuckets - 1),
            UINT64_MAX);
  H.reset();
  constexpr int Threads = 4, PerThread = 50'000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&H] {
      for (int I = 0; I < PerThread; ++I)
        H.observe(7);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(H.count(), uint64_t(Threads) * PerThread);
  EXPECT_EQ(H.sum(), uint64_t(Threads) * PerThread * 7);
  EXPECT_EQ(H.bucket(2), uint64_t(Threads) * PerThread); // 7 in [4, 8)
}

TEST(Metrics, ResetKeepsHandlesValid) {
  obs::Counter &C = obs::counter("test.reset");
  C.inc(5);
  obs::resetMetrics();
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  EXPECT_EQ(C.value(), 1u);
  EXPECT_EQ(obs::counterValue("test.reset"), 1u);
  EXPECT_EQ(obs::counterValue("test.never-registered"), 0u);
}

TEST(Metrics, JsonScrapeIsValidWithExpectedKeys) {
  obs::counter("test.json").inc(3);
  obs::histogram("test.json_ns").observe(100);
  std::string Doc = obs::metricsJson();
  std::string Err;
  std::vector<std::string> Keys;
  ASSERT_TRUE(obs::json::validate(Doc, &Err, &Keys)) << Err;
  ASSERT_EQ(Keys.size(), 3u);
  EXPECT_EQ(Keys[0], "schema_version");
  EXPECT_EQ(Keys[1], "counters");
  EXPECT_EQ(Keys[2], "histograms");
  EXPECT_NE(Doc.find("\"test.json\": 3"), std::string::npos);
  EXPECT_NE(Doc.find("\"test.json_ns\""), std::string::npos);
}

TEST(Metrics, InterpCountersReproduceStageInterpWorkTally) {
  obs::resetMetrics();
  svc::ServiceConfig SC;
  SC.Workers = 4;
  SC.EnableVerdictCache = false; // cache replays would skip interp work
  svc::VectorizerService S(SC);
  const size_t N = 8;
  std::vector<svc::Ticket> Tickets = S.submitBatch(sliceBatch(N));
  svc::StageInterpWork Tally;
  svc::StageSatWork SatTally;
  size_t Tasks = 0;
  for (svc::Ticket T : Tickets) {
    const svc::Outcome &O = S.wait(T);
    ASSERT_FALSE(O.Failed) << O.Error;
    SatTally.add(O.Alive2Work);
    SatTally.add(O.CUnrollWork);
    SatTally.add(O.SplitWork);
    Tally.Instrs += O.ChecksumWork.Instrs;
    Tally.CandRuns += O.ChecksumWork.CandRuns;
    Tally.ScalarRuns += O.ChecksumWork.ScalarRuns;
    Tally.InputSets += O.ChecksumWork.InputSets;
    Tally.ScalarRunsSaved += O.ChecksumWork.ScalarRunsSaved;
    Tally.Traps += O.ChecksumWork.Traps;
    Tally.Hangs += O.ChecksumWork.Hangs;
    ++Tasks;
  }
  // The generic instruments and the svc tally structs count the same
  // work units — by construction, and verified here.
  EXPECT_EQ(obs::counterValue("interp.instrs"), Tally.Instrs);
  EXPECT_EQ(obs::counterValue("interp.cand_runs"), Tally.CandRuns);
  EXPECT_EQ(obs::counterValue("interp.scalar_runs"), Tally.ScalarRuns);
  EXPECT_EQ(obs::counterValue("interp.input_sets"), Tally.InputSets);
  EXPECT_EQ(obs::counterValue("interp.scalar_runs_saved"),
            Tally.ScalarRunsSaved);
  EXPECT_EQ(obs::counterValue("interp.traps"), Tally.Traps);
  EXPECT_EQ(obs::counterValue("interp.hangs"), Tally.Hangs);
  // One instrumented checksum-batch invocation per Verify task (the
  // runChecksumTest wrapper routes through runChecksumBatch).
  EXPECT_EQ(obs::counterValue("interp.checksum_batches"), Tasks);
  EXPECT_EQ(obs::counterValue("svc.tasks"), Tasks);
  EXPECT_EQ(obs::counterValue("svc.tasks_failed"), 0u);
  // The tv.* counters aggregate the same TVResult fields the per-stage
  // StageSatWork tallies do.
  EXPECT_EQ(obs::counterValue("tv.conflicts"), SatTally.Conflicts);
  EXPECT_EQ(obs::counterValue("tv.propagations"), SatTally.Propagations);
  EXPECT_EQ(obs::counterValue("tv.restarts"), SatTally.Restarts);
  EXPECT_EQ(obs::counterValue("tv.trail_reused"), SatTally.TrailReused);
}

//===----------------------------------------------------------------------===//
// JSON validator
//===----------------------------------------------------------------------===//

TEST(Json, AcceptsWellFormedDocuments) {
  std::string Err;
  EXPECT_TRUE(obs::json::validate("{}", &Err)) << Err;
  EXPECT_TRUE(obs::json::validate("[1, -2.5e3, 0.25]", &Err)) << Err;
  EXPECT_TRUE(obs::json::validate(
      "{\"a\": [true, false, null], \"b\": \"x\\u0041\\n\"}", &Err))
      << Err;
  std::vector<std::string> Keys;
  EXPECT_TRUE(
      obs::json::validate("{\"z\": 1, \"a\": {\"nested\": 2}}", &Err, &Keys));
  ASSERT_EQ(Keys.size(), 2u);
  EXPECT_EQ(Keys[0], "z"); // document order, not sorted
  EXPECT_EQ(Keys[1], "a");
}

TEST(Json, RejectsMalformedDocuments) {
  const char *Bad[] = {
      "",           // empty
      "{",          // unterminated object
      "[1, 2",      // unterminated array
      "{\"a\":}",   // missing value
      "{\"a\": 1,}", // trailing comma
      "{\"a\": 1} x", // trailing garbage
      "{'a': 1}",   // single quotes
      "nan",        // not a JSON literal
      "01",         // leading zero
      "\"\x01\"",   // raw control character in string
  };
  for (const char *Doc : Bad)
    EXPECT_FALSE(obs::json::validate(Doc)) << "accepted: " << Doc;
  // Depth limit: 100 nested arrays exceed MaxDepth.
  std::string Deep(100, '[');
  Deep += std::string(100, ']');
  EXPECT_FALSE(obs::json::validate(Deep));
}

//===----------------------------------------------------------------------===//
// Flight recorder
//===----------------------------------------------------------------------===//

TEST(Flight, RingSlowLogAndThreshold) {
  bool Prev = obs::flightEnabled();
  uint64_t PrevThresh = obs::slowTaskThresholdNanos();
  obs::setFlightEnabled(true);
  obs::resetFlight();
  obs::setSlowTaskThresholdNanos(1'000'000); // 1 ms

  obs::TaskRecord Fast;
  Fast.Name = "fast-task";
  Fast.Mode = "verify";
  Fast.Summary = "equivalent";
  Fast.WallNanos = 10'000;
  obs::recordTask(Fast);

  obs::TaskRecord Slow;
  Slow.Name = "slow-task";
  Slow.Mode = "sample";
  Slow.Summary = "100 samples";
  Slow.WallNanos = 5'000'000;
  obs::recordTask(Slow);

  EXPECT_EQ(obs::flightTasksSeen(), 2u);
  std::string Text = obs::flightText();
  EXPECT_NE(Text.find("fast-task"), std::string::npos);
  EXPECT_NE(Text.find("slow-task"), std::string::npos);
  // The slow task appears in the slow log section as well.
  size_t First = Text.find("slow-task");
  EXPECT_NE(Text.find("slow-task", First + 1), std::string::npos)
      << "slow task should appear in both ring and slow log:\n"
      << Text;
  size_t FastFirst = Text.find("fast-task");
  EXPECT_EQ(Text.find("fast-task", FastFirst + 1), std::string::npos)
      << "fast task should appear only in the ring";

  obs::resetFlight();
  EXPECT_EQ(obs::flightTasksSeen(), 0u);
  obs::setSlowTaskThresholdNanos(PrevThresh);
  obs::setFlightEnabled(Prev);
}

TEST(Flight, DisabledModeIsANoOp) {
  bool Prev = obs::flightEnabled();
  obs::setFlightEnabled(false);
  obs::resetFlight();
  obs::TaskRecord R;
  R.Name = "ghost";
  obs::recordTask(R);
  EXPECT_EQ(obs::flightTasksSeen(), 0u);
  EXPECT_EQ(obs::flightText().find("ghost"), std::string::npos);
  obs::setFlightEnabled(Prev);
}

TEST(Flight, ServiceRecordsCompletedTasks) {
  bool Prev = obs::flightEnabled();
  obs::setFlightEnabled(true);
  obs::resetFlight();
  svc::VectorizerService S;
  std::vector<svc::Ticket> Tickets = S.submitBatch(sliceBatch(2));
  for (svc::Ticket T : Tickets)
    (void)S.wait(T);
  EXPECT_EQ(obs::flightTasksSeen(), 2u);
  std::string Text = obs::flightText();
  EXPECT_NE(Text.find(tsvc::suite()[0].Name), std::string::npos);
  EXPECT_NE(Text.find("verify"), std::string::npos);
  obs::resetFlight();
  obs::setFlightEnabled(Prev);
}

} // namespace

