//===- tests/test_overload.cpp - admission, shedding, breaker, journal --------===//
//
// The overload-safety contract (src/svc/README.md "Overload & recovery"):
// (1) the bounded admission queue sheds deterministically by priority —
// the shed set is a pure function of batch content, identical at any
// worker count; (2) blocking admission never deadlocks against the
// workers and sheds only on its own deadline; (3) every shed or rejected
// task is a classified Outcome (FailureKind::Shed) that is never cached
// or journaled; (4) admission slots are released exactly once, even when
// the task body throws; (5) the circuit breaker walks its counter-based
// state machine and rejected calls classify like fast-failing endpoints;
// (6) hedged runs are bit-identical to unhedged ones on a fault-free
// backend; (7) the crash-recovery journal replays completed tasks across
// a process boundary byte-identically and re-runs only the remainder;
// (8) drain() settles every task and cancellation propagates into the
// SplitCellWorkers fan-out threads.
//
//===----------------------------------------------------------------------===//

#include "llm/Chaos.h"
#include "store/Journal.h"
#include "support/Breaker.h"
#include "svc/Service.h"
#include "tsvc/Suite.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

using namespace lv;
using namespace lv::svc;

namespace {

/// Small budgets: these tests exercise serving plumbing, not verdict
/// power (mirrors tests/test_chaos.cpp).
interp::ChecksumConfig fastChecksum() {
  interp::ChecksumConfig C;
  C.RunsPerN = 1;
  C.NValues = {0, 8, 32};
  C.BufferLen = 128;
  return C;
}

core::EquivConfig fastEquiv() {
  core::EquivConfig Cfg;
  Cfg.Checksum = fastChecksum();
  Cfg.ScalarMax = 4;
  Cfg.MaxTerms = 30'000;
  Cfg.Alive2Budget = 100;
  Cfg.CUnrollBudget = 200;
  Cfg.SplitBudget = 50;
  return Cfg;
}

std::vector<Request> pipelineBatch(int N) {
  std::vector<Request> Out;
  // Stride chosen so the sample pool is comfortably larger than any batch
  // these tests request (stride 40 yields only 4 tests from the suite).
  for (const tsvc::TsvcTest *T : tsvc::suiteSample(9, N)) {
    Request R;
    R.Mode = RunMode::Pipeline;
    R.Name = T->Name;
    R.ScalarSource = T->Source;
    R.Fsm.MaxAttempts = 2;
    R.Fsm.Checksum = fastChecksum();
    R.Equiv = fastEquiv();
    Out.push_back(std::move(R));
  }
  return Out;
}

/// Names of the batch's shed outcomes, in ticket order.
std::vector<std::string> shedNames(VectorizerService &S,
                                   const std::vector<Ticket> &Tickets) {
  std::vector<std::string> Out;
  for (Ticket T : Tickets) {
    const Outcome &O = S.wait(T);
    if (O.Failure == FailureKind::Shed)
      Out.push_back(O.Name);
  }
  return Out;
}

std::filesystem::path tempDir(const char *Leaf) {
  std::filesystem::path P = std::filesystem::temp_directory_path() / Leaf;
  std::error_code EC;
  std::filesystem::remove_all(P, EC);
  return P;
}

//===----------------------------------------------------------------------===//
// Admission control + deterministic shedding
//===----------------------------------------------------------------------===//

TEST(Admission, PriorityEvictionIsExact) {
  // Queue depth 1, one worker, ascending priorities: each later submission
  // strictly beats the queued weakest, so only the last survives the
  // queue. (The whole batch is admitted under one lock hold, so no worker
  // can drain the queue mid-admission.)
  ServiceConfig SC;
  SC.Workers = 1;
  SC.MaxQueueDepth = 1;
  VectorizerService S(SC);
  std::vector<Request> B = pipelineBatch(3);
  std::string Last = B[2].Name;
  for (size_t I = 0; I < B.size(); ++I)
    B[I].Priority = static_cast<int>(I);
  std::vector<Ticket> Tickets = S.submitBatch(std::move(B));
  std::vector<std::string> Shed = shedNames(S, Tickets);
  ASSERT_EQ(Shed.size(), 2u);
  for (Ticket T : Tickets) {
    const Outcome &O = S.wait(T);
    if (O.Name == Last) {
      EXPECT_FALSE(O.Failed) << "highest priority survives";
      EXPECT_NE(O.Failure, FailureKind::Shed);
    } else {
      EXPECT_TRUE(O.Failed);
      EXPECT_EQ(O.Failure, FailureKind::Shed);
      EXPECT_NE(O.Error.find("shed:"), std::string::npos);
    }
  }
  EXPECT_EQ(S.resilienceStats().Shed, 2u);
}

TEST(Admission, EqualPriorityKeepsTheEarlierSubmission) {
  // Ties: an incoming task must STRICTLY beat the queued weakest, so with
  // equal priorities the incumbent stays and the newcomers shed.
  ServiceConfig SC;
  SC.Workers = 1;
  SC.MaxQueueDepth = 1;
  VectorizerService S(SC);
  std::vector<Request> B = pipelineBatch(3);
  std::string First = B[0].Name;
  std::vector<Ticket> Tickets = S.submitBatch(std::move(B));
  for (Ticket T : Tickets) {
    const Outcome &O = S.wait(T);
    if (O.Name == First)
      EXPECT_FALSE(O.Failed);
    else
      EXPECT_EQ(O.Failure, FailureKind::Shed);
  }
}

TEST(Admission, ShedSetIsWorkerCountInvariant) {
  auto runAt = [](int Workers) {
    ServiceConfig SC;
    SC.Workers = Workers;
    SC.MaxQueueDepth = 2;
    VectorizerService S(SC);
    std::vector<Request> B = pipelineBatch(6);
    for (size_t I = 0; I < B.size(); ++I)
      B[I].Priority = static_cast<int>(I % 3);
    std::vector<Ticket> Tickets = S.submitBatch(std::move(B));
    return shedNames(S, Tickets);
  };
  std::vector<std::string> One = runAt(1);
  EXPECT_EQ(One.size(), 4u) << "6 tasks into depth 2: exactly 4 shed";
  EXPECT_EQ(runAt(2), One);
  EXPECT_EQ(runAt(8), One);
}

TEST(Admission, ShedOutcomesAreNeverCached) {
  // A shed task must not poison the verdict cache: rerunning the same
  // request on an unloaded service produces a real verdict with no hit.
  ServiceConfig SC;
  SC.Workers = 1;
  SC.MaxQueueDepth = 1;
  VectorizerService S(SC);
  std::vector<Request> B = pipelineBatch(2);
  Request Again = B[1]; // will shed (equal priority, later submission)
  std::vector<Ticket> Tickets = S.submitBatch(std::move(B));
  const Outcome &ShedO = S.wait(Tickets[1]);
  ASSERT_EQ(ShedO.Failure, FailureKind::Shed);
  S.wait(Tickets[0]); // free the queue slot before resubmitting

  const Outcome &Rerun = S.wait(S.submit(std::move(Again)));
  EXPECT_FALSE(Rerun.Failed);
  EXPECT_FALSE(Rerun.VerdictCacheHit);
}

TEST(Admission, BlockPolicyNeverSheds) {
  ServiceConfig SC;
  SC.Workers = 2;
  SC.MaxQueueDepth = 1;
  SC.Admission = ServiceConfig::AdmissionPolicy::Block;
  VectorizerService S(SC);
  std::vector<Ticket> Tickets = S.submitBatch(pipelineBatch(6));
  for (Ticket T : Tickets) {
    const Outcome &O = S.wait(T);
    EXPECT_FALSE(O.Failed) << O.Name << ": " << O.Error;
  }
  EXPECT_EQ(S.resilienceStats().Shed, 0u);
}

TEST(Admission, BlockDeadlineShedsWhenTheQueueStaysFull) {
  // One worker parked on a 5s injected-latency task, queue depth 1
  // already full: a third submission with a 2ms admission deadline must
  // shed instead of blocking forever.
  ServiceConfig SC;
  SC.Workers = 1;
  SC.MaxQueueDepth = 1;
  SC.Admission = ServiceConfig::AdmissionPolicy::Block;
  SC.AdmissionBlockNanos = 2'000'000;
  SC.Chaos.LatencyRate = 1.0;
  SC.Chaos.LatencyNanos = 5'000'000'000ULL;
  VectorizerService S(SC);
  std::vector<Request> B = pipelineBatch(3);
  for (Request &R : B)
    R.DeadlineNanos = 100'000'000; // latency sleeps cancel at the deadline
  Ticket T0 = S.submit(std::move(B[0]));
  // Give the worker time to dequeue task 0, so task 1 owns the queue slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  Ticket T1 = S.submit(std::move(B[1]));
  Ticket T2 = S.submit(std::move(B[2]));
  EXPECT_EQ(S.wait(T2).Failure, FailureKind::Shed)
      << "block deadline expired while the queue stayed full";
  // The earlier two settle normally (timed out by their own deadline).
  S.wait(T0);
  S.wait(T1);
}

TEST(Admission, WaitBatchForReportsPerTaskStatus) {
  ServiceConfig SC;
  SC.Workers = 1;
  SC.MaxQueueDepth = 1;
  SC.Chaos.LatencyRate = 1.0;
  SC.Chaos.LatencyNanos = 300'000'000;
  VectorizerService S(SC);
  std::vector<Ticket> Tickets = S.submitBatch(pipelineBatch(2));
  // Task 1 shed instantly; task 0 still sleeping on injected latency.
  std::vector<VectorizerService::TaskStatus> St =
      S.waitBatchFor(Tickets, 1'000'000);
  ASSERT_EQ(St.size(), 2u);
  EXPECT_EQ(St[0].State, VectorizerService::TaskState::Pending);
  EXPECT_EQ(St[0].Out, nullptr);
  EXPECT_EQ(St[1].State, VectorizerService::TaskState::Shed);
  ASSERT_NE(St[1].Out, nullptr);
  EXPECT_EQ(St[1].Out->Failure, FailureKind::Shed);

  const Outcome *Done = S.waitFor(Tickets[0], 60'000'000'000ULL);
  ASSERT_NE(Done, nullptr);
  St = S.waitBatchFor(Tickets, 0);
  EXPECT_EQ(St[0].State, VectorizerService::TaskState::Done);
  EXPECT_EQ(St[0].Out, Done);
}

//===----------------------------------------------------------------------===//
// Slot release (satellite: exactly once, even for throwing tasks)
//===----------------------------------------------------------------------===//

TEST(Admission, ThrowingTasksReleaseTheirSlotExactlyOnce) {
  // Every client call throws a non-client exception: each task fails
  // Internal. With MaxInflight=1 and queue depth 1 under Block policy,
  // losing a single slot would wedge the service — all six tasks
  // completing proves each slot was released exactly once.
  ServiceConfig SC;
  SC.Workers = 2;
  SC.MaxInflight = 1;
  SC.MaxQueueDepth = 1;
  SC.Admission = ServiceConfig::AdmissionPolicy::Block;
  SC.MakeClient = [](uint64_t) -> std::unique_ptr<llm::LLMClient> {
    class Bomb : public llm::LLMClient {
      llm::Completion complete(const llm::Prompt &, uint64_t) override {
        throw std::runtime_error("boom");
      }
    };
    return std::make_unique<Bomb>();
  };
  VectorizerService S(SC);
  std::vector<Ticket> Tickets = S.submitBatch(pipelineBatch(6));
  for (Ticket T : Tickets) {
    const Outcome &O = S.wait(T);
    EXPECT_TRUE(O.Failed);
    EXPECT_EQ(O.Failure, FailureKind::Internal);
  }
  // drain() waits on Inflight == 0: a leaked slot would hang here.
  VectorizerService::DrainResult DR = S.drain(0);
  EXPECT_EQ(DR.Cancelled, 0u);
  EXPECT_EQ(DR.Shed, 0u);
}

//===----------------------------------------------------------------------===//
// Circuit breaker
//===----------------------------------------------------------------------===//

TEST(Breaker, CounterStateMachine) {
  support::BreakerConfig C;
  C.Enabled = true;
  C.TripFailures = 3;
  C.OpenRejects = 2;
  support::CircuitBreaker B(C);
  using St = support::CircuitBreaker::State;

  // Closed: admits; trips after TripFailures consecutive failures.
  for (int I = 0; I < 3; ++I) {
    EXPECT_TRUE(B.admit());
    B.onFailure();
  }
  EXPECT_EQ(B.state(), St::Open);
  EXPECT_EQ(B.stats().Trips, 1u);

  // Open: rejects OpenRejects times, then the next admission is the probe.
  EXPECT_FALSE(B.admit());
  EXPECT_TRUE(B.admit()) << "second rejection reaches the probe threshold";
  EXPECT_EQ(B.state(), St::HalfOpen);
  EXPECT_EQ(B.stats().Probes, 1u);

  // HalfOpen: only one probe in flight.
  EXPECT_FALSE(B.admit());
  // Probe failure reopens.
  B.onFailure();
  EXPECT_EQ(B.state(), St::Open);
  EXPECT_EQ(B.stats().Trips, 2u);

  // Ride to the next probe; success recloses and resets the streak.
  EXPECT_FALSE(B.admit());
  EXPECT_TRUE(B.admit());
  B.onSuccess();
  EXPECT_EQ(B.state(), St::Closed);
  EXPECT_EQ(B.stats().Reclosed, 1u);

  // A success in Closed resets the consecutive-failure count.
  EXPECT_TRUE(B.admit());
  B.onFailure();
  EXPECT_TRUE(B.admit());
  B.onSuccess();
  EXPECT_TRUE(B.admit());
  B.onFailure();
  EXPECT_EQ(B.state(), St::Closed) << "streak was reset by the success";
}

TEST(Breaker, AbandonedProbeFreesTheSlot) {
  support::BreakerConfig C;
  C.Enabled = true;
  C.TripFailures = 1;
  C.OpenRejects = 1;
  support::CircuitBreaker B(C);
  EXPECT_TRUE(B.admit());
  B.onFailure(); // Open
  EXPECT_TRUE(B.admit()) << "OpenRejects=1: the first open-state call probes";
  EXPECT_FALSE(B.admit()) << "only one probe in flight at a time";
  B.onAbandoned(); // e.g. cancelled before the backend answered
  EXPECT_TRUE(B.admit()) << "the probe slot must be reusable";
}

TEST(Breaker, DisabledBreakerIsInert) {
  support::CircuitBreaker B; // default config: disabled
  for (int I = 0; I < 100; ++I) {
    EXPECT_TRUE(B.admit());
    B.onFailure();
  }
  EXPECT_EQ(B.state(), support::CircuitBreaker::State::Closed);
  EXPECT_EQ(B.stats().Admitted, 0u) << "disabled breaker counts nothing";
}

TEST(Breaker, ServiceTripsUnderSustainedFaultsAndClassifies) {
  ServiceConfig SC;
  SC.Workers = 1;
  SC.ClientRetries = 1;
  SC.Chaos.TransientRate = 1.0; // every backend call faults
  SC.Breaker.Enabled = true;
  SC.Breaker.TripFailures = 2;
  SC.Breaker.OpenRejects = 2;
  VectorizerService S(SC);
  std::vector<Ticket> Tickets = S.submitBatch(pipelineBatch(4));
  for (Ticket T : Tickets) {
    const Outcome &O = S.wait(T);
    EXPECT_TRUE(O.Failed);
    EXPECT_EQ(O.Failure, FailureKind::ClientTransient)
        << "breaker rejections classify like fast-failing transients";
  }
  support::BreakerStats BS = S.breakerStats();
  EXPECT_GT(BS.Trips, 0u);
  EXPECT_GT(BS.Rejected, 0u);
}

TEST(Breaker, HedgedRunIsBitIdenticalWithoutFaults) {
  auto runWith = [](uint64_t HedgeAfterCalls) {
    ServiceConfig SC;
    SC.Workers = 2;
    SC.HedgeAfterCalls = HedgeAfterCalls;
    VectorizerService S(SC);
    std::vector<Ticket> Tickets = S.submitBatch(pipelineBatch(3));
    std::vector<std::string> Out;
    for (Ticket T : Tickets)
      Out.push_back(debugString(S.wait(T)));
    return Out;
  };
  EXPECT_EQ(runWith(0), runWith(1))
      << "hedging must change latency, never content";
}

//===----------------------------------------------------------------------===//
// Crash-recovery batch journal
//===----------------------------------------------------------------------===//

TEST(Journal, OutcomeSerializationRoundTrips) {
  ServiceConfig SC;
  SC.Workers = 1;
  VectorizerService S(SC);
  std::vector<Request> B = pipelineBatch(1);
  Outcome Original = S.wait(S.submit(std::move(B[0])));

  std::string Bytes = serializeOutcome(Original);
  Outcome Back;
  ASSERT_TRUE(deserializeOutcome(Bytes, Back));
  EXPECT_EQ(debugString(Back), debugString(Original));
  EXPECT_EQ(Back.ChecksumWork.InputSets, Original.ChecksumWork.InputSets);
  EXPECT_EQ(Back.ChecksumWork.Instrs, Original.ChecksumWork.Instrs);
  EXPECT_EQ(Back.Alive2Work.Conflicts, Original.Alive2Work.Conflicts);
  EXPECT_EQ(Back.Retries, Original.Retries);

  // Truncation at any prefix must fail the decode, not mis-parse.
  for (size_t Cut : {size_t(0), Bytes.size() / 2, Bytes.size() - 1}) {
    Outcome Junk;
    EXPECT_FALSE(deserializeOutcome(Bytes.substr(0, Cut), Junk));
  }
}

TEST(Journal, ReplaysAcrossProcessBoundary) {
  std::filesystem::path Dir = tempDir("lv_test_journal_replay");
  std::vector<std::string> FirstRun;
  {
    ServiceConfig SC;
    SC.Workers = 2;
    SC.JournalPath = Dir.string();
    VectorizerService S(SC);
    std::vector<Ticket> Tickets = S.submitBatch(pipelineBatch(4));
    for (Ticket T : Tickets) {
      const Outcome &O = S.wait(T);
      EXPECT_FALSE(O.Failed);
      EXPECT_FALSE(O.JournalReplayed);
      FirstRun.push_back(debugString(O));
    }
    EXPECT_EQ(S.resilienceStats().JournalReplayed, 0u);
  }
  {
    // "Restart": a fresh service on the same journal directory.
    ServiceConfig SC;
    SC.Workers = 2;
    SC.JournalPath = Dir.string();
    VectorizerService S(SC);
    std::vector<Ticket> Tickets = S.submitBatch(pipelineBatch(4));
    for (size_t I = 0; I < Tickets.size(); ++I) {
      const Outcome &O = S.wait(Tickets[I]);
      EXPECT_TRUE(O.JournalReplayed) << O.Name;
      EXPECT_EQ(debugString(O), FirstRun[I])
          << "replayed outcome must be byte-identical";
    }
    EXPECT_EQ(S.resilienceStats().JournalReplayed, 4u);
    ASSERT_NE(S.journal(), nullptr);
    EXPECT_EQ(S.journal()->stats().LoadedDone, 4u);
  }
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

TEST(Journal, ServingConfigChangeInvalidatesReplay) {
  // The journal task key folds in the serving-policy salt: a run with a
  // different chaos schedule must not replay outcomes recorded without
  // one (they could legitimately differ in retries/failures).
  std::filesystem::path Dir = tempDir("lv_test_journal_salt");
  {
    ServiceConfig SC;
    SC.Workers = 1;
    SC.JournalPath = Dir.string();
    VectorizerService S(SC);
    for (Ticket T : S.submitBatch(pipelineBatch(2)))
      S.wait(T);
  }
  {
    ServiceConfig SC;
    SC.Workers = 1;
    SC.JournalPath = Dir.string();
    SC.Chaos.TransientCallScript = {0}; // different serving policy
    VectorizerService S(SC);
    for (Ticket T : S.submitBatch(pipelineBatch(2))) {
      const Outcome &O = S.wait(T);
      EXPECT_FALSE(O.JournalReplayed)
          << "different serving salt must miss the journal";
    }
    EXPECT_EQ(S.resilienceStats().JournalReplayed, 0u);
  }
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

TEST(Journal, TornTailIsTruncatedAndReplaySurvives) {
  std::filesystem::path Dir = tempDir("lv_test_journal_torn");
  {
    ServiceConfig SC;
    SC.Workers = 1;
    SC.JournalPath = Dir.string();
    VectorizerService S(SC);
    for (Ticket T : S.submitBatch(pipelineBatch(2)))
      EXPECT_FALSE(S.wait(T).Failed);
  }
  // Simulate a crash mid-append: a torn half-record at the tail.
  {
    std::FILE *F =
        std::fopen((Dir / "journal.log").string().c_str(), "ab");
    ASSERT_NE(F, nullptr);
    const char Garbage[] = "LVRCtorn-frame";
    std::fwrite(Garbage, 1, sizeof(Garbage), F);
    std::fclose(F);
  }
  {
    ServiceConfig SC;
    SC.Workers = 1;
    SC.JournalPath = Dir.string();
    VectorizerService S(SC);
    ASSERT_NE(S.journal(), nullptr);
    EXPECT_TRUE(S.journal()->ok());
    EXPECT_EQ(S.journal()->stats().LoadedDone, 2u)
        << "records before the torn tail survive";
    for (Ticket T : S.submitBatch(pipelineBatch(2)))
      EXPECT_TRUE(S.wait(T).JournalReplayed);
  }
  std::error_code EC;
  std::filesystem::remove_all(Dir, EC);
}

//===----------------------------------------------------------------------===//
// Graceful drain + cancellation propagation
//===----------------------------------------------------------------------===//

TEST(Drain, SettlesEveryTaskAndShedsLateAdmissions) {
  ServiceConfig SC;
  SC.Workers = 1;
  SC.Chaos.LatencyRate = 1.0;
  SC.Chaos.LatencyNanos = 10'000'000'000ULL; // parks every task 10s
  VectorizerService S(SC);
  std::vector<Ticket> Tickets = S.submitBatch(pipelineBatch(3));
  // Let the worker park on task 0's cancellable latency sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  VectorizerService::DrainResult DR = S.drain(/*DeadlineNanos=*/0);
  EXPECT_EQ(DR.Cancelled, 1u) << "the in-flight task was cancelled";
  EXPECT_EQ(DR.Shed, 2u) << "queued tasks were shed";
  std::vector<VectorizerService::TaskStatus> St = S.waitBatchFor(Tickets, 0);
  ASSERT_NE(St[0].Out, nullptr);
  EXPECT_EQ(St[0].Out->Failure, FailureKind::TimedOut);
  for (size_t I = 1; I < St.size(); ++I) {
    EXPECT_EQ(St[I].State, VectorizerService::TaskState::Shed);
    ASSERT_NE(St[I].Out, nullptr);
    EXPECT_NE(St[I].Out->Error.find("drain"), std::string::npos);
  }
  // Post-drain admissions shed immediately.
  std::vector<Request> More = pipelineBatch(1);
  const Outcome &Late = S.wait(S.submit(std::move(More[0])));
  EXPECT_EQ(Late.Failure, FailureKind::Shed);
  EXPECT_NE(Late.Error.find("draining"), std::string::npos);
}

TEST(Drain, GracePeriodLetsWorkFinish) {
  ServiceConfig SC;
  SC.Workers = 2;
  VectorizerService S(SC);
  std::vector<Ticket> Tickets = S.submitBatch(pipelineBatch(2));
  VectorizerService::DrainResult DR = S.drain(60'000'000'000ULL);
  EXPECT_EQ(DR.Completed + 0u, 2u) << "fast tasks finish inside the grace";
  EXPECT_EQ(DR.Cancelled, 0u);
  EXPECT_EQ(DR.Shed, 0u);
  for (Ticket T : Tickets)
    EXPECT_FALSE(S.wait(T).Failed);
}

TEST(Drain, CancelPropagatesIntoSplitCellWorkers) {
  // Starve stages 2-3 so the verify falls through to spatial splitting
  // with a 4-way cell fan-out and a budget far beyond what drain allows:
  // the fan-out threads poll the task token captured before the spawn
  // (tv/Refine.cpp checkCells), so drain's requestCancel must unwind them
  // promptly into a classified TimedOut outcome. A hang here means the
  // token did not propagate.
  const char *Scalar =
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }";
  const char *Vec = R"(
      void f(int n, int *a, int *b) {
        __m256i one = _mm256_set1_epi32(1);
        for (int i = 0; i < n; i += 8) {
          __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
          _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
        }
      })";
  ServiceConfig SC;
  SC.Workers = 1;
  VectorizerService S(SC);
  Request R;
  R.Mode = RunMode::Verify;
  R.Name = "split_cancel";
  R.ScalarSource = Scalar;
  R.CandidateSource = Vec;
  R.Equiv = fastEquiv();
  R.Equiv.Alive2Budget = 1;
  R.Equiv.CUnrollBudget = 1;
  R.Equiv.SplitBudget = 50'000;
  R.Equiv.MaxTerms = 200'000;
  R.Equiv.SplitCellWorkers = 4;
  Ticket T = S.submit(std::move(R));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  VectorizerService::DrainResult DR = S.drain(0);
  const Outcome &O = S.wait(T);
  if (O.Failed) {
    // Cancellation unwound the cell fan-out: a classified timeout.
    EXPECT_EQ(O.Failure, FailureKind::TimedOut);
    EXPECT_EQ(DR.Cancelled, 1u);
  } else {
    // The verify outran the head start (or the cancel landed after its
    // last poll) — legal; it settled, and nothing was shed.
    EXPECT_EQ(DR.Shed, 0u);
  }
}

} // namespace
