//===- tests/test_pipeline.cpp - Algorithm 1 pipeline tests -------------------===//
//
// End-to-end tests of the Algorithm-1 funnel, driven through the
// vectorization service's verifyPair wrapper (the canonical entry point):
// the staged funnel must decide the paper's examples at the stages the
// paper attributes them to, the wrapper must agree with the
// core::checkEquivalence kernel it routes to, and the C-unroll transform
// must behave as §3.2 describes.
//
//===----------------------------------------------------------------------===//

#include "core/CUnroll.h"
#include "core/Equivalence.h"
#include "svc/Service.h"
#include "minic/Parser.h"
#include "minic/Printer.h"

#include <gtest/gtest.h>

using namespace lv;
using namespace lv::core;

namespace {

const char *S212Scalar = R"(
void s212(int n, int *a, int *b, int *c, int *d) {
  for (int i = 0; i < n - 1; i++) {
    a[i] *= c[i];
    b[i] += a[i + 1] * d[i];
  }
})";

const char *S212Vector = R"(
void s212(int n, int *a, int *b, int *c, int *d) {
  int i;
  for (i = 0; i < n - 1 - (n - 1) % 8; i += 8) {
    __m256i a_vec = _mm256_loadu_si256((__m256i *)&a[i]);
    __m256i b_vec = _mm256_loadu_si256((__m256i *)&b[i]);
    __m256i c_vec = _mm256_loadu_si256((__m256i *)&c[i]);
    __m256i a_next = _mm256_loadu_si256((__m256i *)&a[i + 1]);
    __m256i d_vec = _mm256_loadu_si256((__m256i *)&d[i]);
    __m256i prod = _mm256_mullo_epi32(a_vec, c_vec);
    _mm256_storeu_si256((__m256i *)&a[i], prod);
    prod = _mm256_mullo_epi32(a_next, d_vec);
    _mm256_storeu_si256((__m256i *)&b[i], _mm256_add_epi32(b_vec, prod));
  }
  for (; i < n - 1; i++) {
    a[i] *= c[i];
    b[i] += a[i + 1] * d[i];
  }
})";

TEST(CUnrollTransform, ProducesStraightLineCopies) {
  minic::ParseResult P = minic::parseFunction(
      "void f(int n, int *a) { for (int i = 0; i < n; i++) a[i] = i; }");
  ASSERT_TRUE(P.ok());
  UnrollResult R = unrollStraightLine(*P.Fn, 8, false);
  ASSERT_TRUE(R.ok()) << R.Error;
  std::string Text = minic::printFunction(*R.Fn);
  EXPECT_EQ(Text.find("for"), std::string::npos) << Text;
  // Eight body copies, each with the step appended.
  size_t Count = 0;
  for (size_t Pos = Text.find("a[i] = i"); Pos != std::string::npos;
       Pos = Text.find("a[i] = i", Pos + 1))
    ++Count;
  EXPECT_EQ(Count, 8u);
  EXPECT_NE(Text.find("i++"), std::string::npos);
}

TEST(CUnrollTransform, BreakBecomesReturn) {
  minic::ParseResult P = minic::parseFunction(
      "void f(int n, int *a) { for (int i = 0; i < n; i++) { "
      "if (a[i] == 0) break; a[i] = 1; } }");
  ASSERT_TRUE(P.ok());
  UnrollResult R = unrollStraightLine(*P.Fn, 2, false);
  ASSERT_TRUE(R.ok()) << R.Error;
  std::string Text = minic::printFunction(*R.Fn);
  EXPECT_EQ(Text.find("break"), std::string::npos) << Text;
  EXPECT_NE(Text.find("return"), std::string::npos) << Text;
}

TEST(CUnrollTransform, DropsEpilogueLoops) {
  minic::ParseResult P = minic::parseFunction(R"(
    void f(int n, int *a) {
      int i = 0;
      for (; i <= n - 8; i += 8) a[i] = 1;
      for (; i < n; i++) a[i] = 1;
    })");
  ASSERT_TRUE(P.ok());
  UnrollResult R = unrollStraightLine(*P.Fn, 1, /*DropLaterLoops=*/true);
  ASSERT_TRUE(R.ok()) << R.Error;
  std::string Text = minic::printFunction(*R.Fn);
  EXPECT_EQ(Text.find("for"), std::string::npos) << Text;
}

TEST(CUnrollTransform, RejectsContinue) {
  minic::ParseResult P = minic::parseFunction(
      "void f(int n, int *a) { for (int i = 0; i < n; i++) { "
      "if (a[i] < 0) continue; a[i] = 1; } }");
  ASSERT_TRUE(P.ok());
  UnrollResult R = unrollStraightLine(*P.Fn, 4, false);
  EXPECT_FALSE(R.ok());
}

TEST(CUnrollTransform, ElevatesOuterLoop) {
  minic::ParseResult P = minic::parseFunction(R"(
    void f(int n, int *a, int *b) {
      for (int j = 0; j < n; j++) {
        for (int i = 0; i < n; i++) {
          a[i] = b[i] + j;
        }
      }
    })");
  ASSERT_TRUE(P.ok());
  std::string Header;
  UnrollResult R = elevateOuterLoop(*P.Fn, Header);
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_NE(Header.find("int j = 0"), std::string::npos) << Header;
  EXPECT_EQ(R.Fn->Params.back().Name, "j");
  std::string Text = minic::printFunction(*R.Fn);
  // Only the inner loop remains.
  EXPECT_EQ(Text.find("j++"), std::string::npos) << Text;
  EXPECT_NE(Text.find("for (int i = 0"), std::string::npos) << Text;
}

TEST(Pipeline, WrapperAgreesWithKernel) {
  // svc::verifyPair must be a pure routing layer over the
  // core::checkEquivalence kernel: identical verdict, stage attribution,
  // and diagnostics on the same pair.
  const char *Scalar =
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }";
  const char *Vec = R"(
      void f(int n, int *a, int *b) {
        __m256i one = _mm256_set1_epi32(1);
        for (int i = 0; i < n; i += 8) {
          __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
          _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
        }
      })";
  EquivResult Kernel = checkEquivalence(Scalar, Vec);
  EquivResult Wrapped = svc::verifyPair(Scalar, Vec);
  EXPECT_EQ(Kernel.Final, Wrapped.Final);
  EXPECT_EQ(Kernel.DecidedBy, Wrapped.DecidedBy);
  EXPECT_EQ(Kernel.Detail, Wrapped.Detail);
  EXPECT_EQ(Kernel.Counterexample, Wrapped.Counterexample);
  EXPECT_EQ(Kernel.Alive2Res.V, Wrapped.Alive2Res.V);
  EXPECT_EQ(Kernel.Alive2Res.Conflicts, Wrapped.Alive2Res.Conflicts);
}

TEST(Pipeline, SimpleWidenDecidedAtAlive2Stage) {
  EquivResult R = svc::verifyPair(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }",
      R"(
      void f(int n, int *a, int *b) {
        __m256i one = _mm256_set1_epi32(1);
        for (int i = 0; i < n; i += 8) {
          __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
          _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
        }
      })");
  EXPECT_EQ(R.Final, EquivResult::Equivalent) << R.Detail;
  EXPECT_EQ(R.DecidedBy, Stage::Alive2Unroll) << stageName(R.DecidedBy);
}

TEST(Pipeline, S212DecidedAtCUnrollStage) {
  // The paper's headline technique: plain Alive2 unrolling times out on
  // s212-class queries; C-level unrolling of one aligned block closes it.
  EquivConfig Cfg;
  Cfg.Alive2Budget = 4'000; // keep the demonstration fast
  EquivResult R = svc::verifyPair(S212Scalar, S212Vector, Cfg);
  EXPECT_EQ(R.Final, EquivResult::Equivalent)
      << R.Detail << "\n" << R.Counterexample;
  EXPECT_EQ(R.DecidedBy, Stage::CUnroll) << stageName(R.DecidedBy);
  EXPECT_EQ(R.Alive2Res.V, tv::TVVerdict::Inconclusive);
}

TEST(Pipeline, ChecksumRejectsObviouslyWrongCandidate) {
  EquivResult R = svc::verifyPair(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }",
      R"(
      void f(int n, int *a, int *b) {
        __m256i two = _mm256_set1_epi32(2);
        for (int i = 0; i < n; i += 8) {
          __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
          _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, two));
        }
      })");
  EXPECT_EQ(R.Final, EquivResult::Inequivalent);
  EXPECT_EQ(R.DecidedBy, Stage::Checksum);
}

TEST(Pipeline, CannotCompileDetected) {
  EquivResult R = svc::verifyPair(
      "void f(int n, int *a) { for (int i = 0; i < n; i++) a[i] = 1; }",
      "void f(int n, int *a) { _mm256x_bogus(a); }");
  EXPECT_EQ(R.Final, EquivResult::CannotCompile);
}

TEST(Pipeline, SplittingDecidesWhenEarlierStagesAreStarved) {
  // Ablation-style: with stages 2-3 disabled, the per-cell splitting stage
  // must carry an eligible kernel on its own.
  EquivConfig Cfg;
  Cfg.EnableAlive2 = false;
  Cfg.EnableCUnroll = false;
  EquivResult R = svc::verifyPair(
      "void f(int n, int *a, int *b, int *c) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] * c[i]; }",
      R"(
      void f(int n, int *a, int *b, int *c) {
        for (int i = 0; i < n; i += 8) {
          __m256i vb = _mm256_loadu_si256((__m256i *)&b[i]);
          __m256i vc = _mm256_loadu_si256((__m256i *)&c[i]);
          _mm256_storeu_si256((__m256i *)&a[i], _mm256_mullo_epi32(vb, vc));
        }
      })",
      Cfg);
  EXPECT_EQ(R.Final, EquivResult::Equivalent) << R.Detail;
  EXPECT_EQ(R.DecidedBy, Stage::Splitting) << stageName(R.DecidedBy);
  EXPECT_TRUE(R.SplittingEligible);
  EXPECT_EQ(R.SplitRes.size(), 8u);
}

TEST(Pipeline, SplittingIneligibleForOffsetReads) {
  // a[i+1] reads fail the conservative syntactic no-carry check (§3.3).
  EquivConfig Cfg;
  Cfg.EnableAlive2 = false;
  Cfg.EnableCUnroll = false;
  EquivResult R = svc::verifyPair(S212Scalar, S212Vector, Cfg);
  EXPECT_EQ(R.Final, EquivResult::Inconclusive);
  EXPECT_FALSE(R.SplittingEligible);
}

TEST(Pipeline, NestedLoopsViaOuterElevation) {
  const char *Scalar = R"(
    void f(int n, int *a, int *b) {
      for (int j = 0; j < n; j++) {
        for (int i = 0; i < n; i++) {
          a[i] = b[i] + j;
        }
      }
    })";
  const char *Vec = R"(
    void f(int n, int *a, int *b) {
      for (int j = 0; j < n; j++) {
        __m256i vj = _mm256_set1_epi32(j);
        for (int i = 0; i < n; i += 8) {
          __m256i vb = _mm256_loadu_si256((__m256i *)&b[i]);
          _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(vb, vj));
        }
      }
    })";
  EquivResult R = svc::verifyPair(Scalar, Vec);
  EXPECT_EQ(R.Final, EquivResult::Equivalent)
      << R.Detail << "\n" << R.Counterexample;
}

TEST(Pipeline, NestedLoopsWithDifferentOuterHeadersInconclusive) {
  const char *Scalar = R"(
    void f(int n, int *a) {
      for (int j = 0; j < n; j++) {
        for (int i = 0; i < n; i++) {
          a[i] = a[i] + j;
        }
      }
    })";
  const char *Vec = R"(
    void f(int n, int *a) {
      for (int j = 1; j < n; j++) {
        for (int i = 0; i < n; i += 8) {
          __m256i va = _mm256_loadu_si256((__m256i *)&a[i]);
          _mm256_storeu_si256((__m256i *)&a[i],
                              _mm256_add_epi32(va, _mm256_set1_epi32(j)));
        }
      }
    })";
  EquivResult R = svc::verifyPair(Scalar, Vec);
  EXPECT_EQ(R.Final, EquivResult::Inconclusive);
  EXPECT_NE(R.Detail.find("not syntactically identical"), std::string::npos)
      << R.Detail;
}

} // namespace
