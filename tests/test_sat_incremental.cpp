//===- tests/test_sat_incremental.cpp - incremental SAT backend tests --------===//
//
// Cross-validation of the incremental solver path against scratch solving:
// (1) solve(assumptions) on randomized CNF agrees with a fresh solver that
// has the assumptions asserted as unit clauses, and Sat models satisfy the
// assumptions; (2) the learnt-clause DB reduction keeps verdicts correct on
// instances hard enough to trigger it; (3) the IncrementalSolver facade
// agrees with one-shot checkSat across repeated queries on a shared term
// table; (4) regression: stage-4 spatial splitting returns identical
// EquivResult verdicts whether queries share one incremental session or
// re-solve from scratch per cell (the seed behaviour).
//
//===----------------------------------------------------------------------===//

#include "core/Equivalence.h"
#include "smt/Sat.h"
#include "smt/Solve.h"
#include "smt/Term.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace lv;
using namespace lv::smt;

namespace {

//===----------------------------------------------------------------------===//
// solve(assumptions) vs scratch solver
//===----------------------------------------------------------------------===//

struct RandomCnf {
  int NumVars = 0;
  std::vector<std::vector<Lit>> Clauses;
};

static RandomCnf makeRandomCnf(Rng &R) {
  RandomCnf C;
  C.NumVars = 6 + static_cast<int>(R.below(10)); // 6..15
  int NumClauses = 10 + static_cast<int>(R.below(60));
  for (int I = 0; I < NumClauses; ++I) {
    std::vector<Lit> Cl;
    int Len = 2 + static_cast<int>(R.below(3)); // 2..4 literals
    for (int K = 0; K < Len; ++K) {
      Var V = static_cast<Var>(R.below(static_cast<uint64_t>(C.NumVars)));
      Cl.push_back(Lit(V, R.chance(0.5)));
    }
    C.Clauses.push_back(Cl);
  }
  return C;
}

/// Loads a CNF into a solver whose vars are created on the fly.
static bool loadCnf(SatSolver &S, const RandomCnf &C) {
  for (int I = 0; I < C.NumVars; ++I)
    S.newVar();
  bool Ok = true;
  for (const auto &Cl : C.Clauses)
    Ok = S.addClause(Cl) && Ok;
  return Ok;
}

class SatAssumptionsTest : public ::testing::TestWithParam<int> {};

TEST_P(SatAssumptionsTest, AgreesWithScratchSolver) {
  Rng R(static_cast<uint64_t>(GetParam()) * 48271 + 11);
  RandomCnf C = makeRandomCnf(R);

  // One incremental solver answers a whole batch of assumption queries...
  SatSolver Inc;
  bool IncOk = loadCnf(Inc, C);

  for (int Q = 0; Q < 8; ++Q) {
    std::vector<Lit> Assumps;
    int NumA = static_cast<int>(R.below(4)); // 0..3 assumptions
    for (int K = 0; K < NumA; ++K) {
      Var V = static_cast<Var>(R.below(static_cast<uint64_t>(C.NumVars)));
      Assumps.push_back(Lit(V, R.chance(0.5)));
    }

    // ...each cross-checked against a scratch solver with the assumptions
    // baked in as unit clauses.
    SatSolver Scratch;
    bool ScratchOk = loadCnf(Scratch, C);
    for (Lit A : Assumps)
      ScratchOk = Scratch.addClause(A) && ScratchOk;

    SatResult Want =
        ScratchOk ? Scratch.solve() : SatResult::Unsat;
    SatResult Got =
        IncOk ? Inc.solve(Assumps, SatBudget()) : SatResult::Unsat;
    ASSERT_NE(Got, SatResult::Unknown);
    EXPECT_EQ(Got, Want) << "query " << Q;

    if (Got == SatResult::Sat) {
      // The model must satisfy every assumption and every clause.
      for (Lit A : Assumps)
        EXPECT_EQ(Inc.modelValue(A.var()), !A.sign())
            << "assumption violated";
      for (const auto &Cl : C.Clauses) {
        bool Any = false;
        for (Lit L : Cl)
          if (Inc.modelValue(L.var()) == !L.sign())
            Any = true;
        EXPECT_TRUE(Any) << "model violates a clause";
      }
    }
    // Unsat under assumptions must not poison the incremental solver:
    // the empty query on a satisfiable DB must still come back Sat.
    if (Got == SatResult::Unsat && IncOk && Inc.ok()) {
      SatSolver Plain;
      bool PlainOk = loadCnf(Plain, C);
      SatResult Base = PlainOk ? Plain.solve() : SatResult::Unsat;
      EXPECT_EQ(Inc.solve(), Base) << "solver poisoned by assumptions";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SatAssumptionsTest, ::testing::Range(0, 30));

TEST(SatIncremental, ClausesAddedBetweenQueries) {
  // x1 assumed, then (~x1 | x2) added, then ~x2 assumed: must flip to
  // Unsat while plain solving stays Sat.
  SatSolver S;
  Var X1 = S.newVar();
  Var X2 = S.newVar();
  EXPECT_EQ(S.solve(std::vector<Lit>{Lit(X1, false)}, SatBudget()),
            SatResult::Sat);
  S.addClause(Lit(X1, true), Lit(X2, false));
  EXPECT_EQ(S.solve(std::vector<Lit>{Lit(X1, false), Lit(X2, true)},
                    SatBudget()),
            SatResult::Unsat);
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_TRUE(S.ok());
}

TEST(SatIncremental, ContradictoryAssumptionsAreUnsatNotFatal) {
  SatSolver S;
  Var X = S.newVar();
  EXPECT_EQ(S.solve(std::vector<Lit>{Lit(X, false), Lit(X, true)},
                    SatBudget()),
            SatResult::Unsat);
  EXPECT_TRUE(S.ok());
  EXPECT_EQ(S.solve(), SatResult::Sat);
}

//===----------------------------------------------------------------------===//
// Luby restart schedule
//===----------------------------------------------------------------------===//

TEST(LubySchedule, ReluctantDoublingPrefix) {
  // luby(2, i) for i = 0.. must be the classic reluctant-doubling
  // sequence 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8 ...
  const double Want[] = {1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8};
  for (int I = 0; I < 15; ++I)
    EXPECT_DOUBLE_EQ(luby(2.0, I), Want[I]) << "index " << I;
}

TEST(LubySchedule, EverySubsequenceRestartsAtOne) {
  // The sequence value is a power of the base, and position 2^k - 1 holds
  // the maximum 2^(k-1) seen so far (the doubling envelope).
  for (int K = 1; K <= 6; ++K) {
    int Pos = (1 << K) - 1;
    EXPECT_DOUBLE_EQ(luby(2.0, Pos - 1),
                     std::pow(2.0, K - 1)) << "envelope at " << Pos;
    EXPECT_DOUBLE_EQ(luby(2.0, Pos), 1.0) << "restart at " << Pos;
  }
}

//===----------------------------------------------------------------------===//
// Trail reuse: verdict parity vs scratch solving, and the stat
//===----------------------------------------------------------------------===//

namespace {

/// Pigeonhole clauses PHP(N, N-1): hard enough to force many restarts.
void loadPigeonhole(SatSolver &S, int N) {
  std::vector<std::vector<Var>> P(static_cast<size_t>(N),
                                  std::vector<Var>(static_cast<size_t>(N - 1)));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I < N; ++I) {
    std::vector<Lit> C;
    for (int H = 0; H < N - 1; ++H)
      C.push_back(Lit(P[static_cast<size_t>(I)][static_cast<size_t>(H)],
                      false));
    S.addClause(C);
  }
  for (int H = 0; H < N - 1; ++H)
    for (int I = 0; I < N; ++I)
      for (int J = I + 1; J < N; ++J)
        S.addClause(
            Lit(P[static_cast<size_t>(I)][static_cast<size_t>(H)], true),
            Lit(P[static_cast<size_t>(J)][static_cast<size_t>(H)], true));
}

} // namespace

class TrailReuseParityTest : public ::testing::TestWithParam<int> {};

TEST_P(TrailReuseParityTest, AgreesWithScratchSolver) {
  Rng R(static_cast<uint64_t>(GetParam()) * 96731 + 7);
  RandomCnf C = makeRandomCnf(R);

  SatOptions Reuse;
  Reuse.TrailReuse = true;

  SatSolver Inc;
  bool IncOk = loadCnf(Inc, C);
  for (int Q = 0; Q < 6; ++Q) {
    std::vector<Lit> Assumps;
    int NumA = 1 + static_cast<int>(R.below(3));
    for (int K = 0; K < NumA; ++K) {
      Var V = static_cast<Var>(R.below(static_cast<uint64_t>(C.NumVars)));
      Assumps.push_back(Lit(V, R.chance(0.5)));
    }
    SatSolver Scratch;
    bool ScratchOk = loadCnf(Scratch, C);
    for (Lit A : Assumps)
      ScratchOk = Scratch.addClause(A) && ScratchOk;
    SatResult Want = ScratchOk ? Scratch.solve() : SatResult::Unsat;
    SatResult Got = IncOk ? Inc.solve(Assumps, SatBudget(), Reuse)
                          : SatResult::Unsat;
    ASSERT_NE(Got, SatResult::Unknown);
    EXPECT_EQ(Got, Want) << "query " << Q;
    if (Got == SatResult::Sat) {
      for (Lit A : Assumps)
        EXPECT_EQ(Inc.modelValue(A.var()), !A.sign());
      for (const auto &Cl : C.Clauses) {
        bool Any = false;
        for (Lit L : Cl)
          if (Inc.modelValue(L.var()) == !L.sign())
            Any = true;
        EXPECT_TRUE(Any) << "model violates a clause";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, TrailReuseParityTest,
                         ::testing::Range(0, 20));

TEST(TrailReuse, ReusesAssumptionPrefixAcrossRestarts) {
  // A hard instance under an assumption: the Luby restarts must keep the
  // assumption level instead of re-deriving it, and the verdict must
  // match the reuse-free solve.
  SatSolver A, B;
  loadPigeonhole(A, 8);
  loadPigeonhole(B, 8);
  Var Extra = A.newVar();
  (void)B.newVar();
  std::vector<Lit> Assumps{Lit(Extra, false)};

  SatOptions Reuse;
  Reuse.TrailReuse = true;
  SatResult WithReuse = A.solve(Assumps, SatBudget(), Reuse);
  SatResult Plain = B.solve(Assumps, SatBudget());
  EXPECT_EQ(WithReuse, Plain);
  EXPECT_EQ(WithReuse, SatResult::Unsat);
  EXPECT_GT(A.stats().Restarts, 0u) << "instance too easy to restart";
  EXPECT_GT(A.stats().TrailReused, 0u)
      << "restarts did not reuse the assumption prefix";
  EXPECT_EQ(B.stats().TrailReused, 0u) << "stat must be opt-in";
}

//===----------------------------------------------------------------------===//
// Cone projection: parity with scratch solving, certificate restriction
//===----------------------------------------------------------------------===//

class ConeParityTest : public ::testing::TestWithParam<int> {};

TEST_P(ConeParityTest, AgreesWithScratchSolver) {
  // Connectivity-cone fallback on raw CNF: projected solving must agree
  // with scratch solving on every assumption query (cone projection only
  // reshapes the search, never the verdict).
  Rng R(static_cast<uint64_t>(GetParam()) * 193939 + 5);
  RandomCnf C = makeRandomCnf(R);

  SatOptions Cone;
  Cone.ConeProjection = true;

  SatSolver Inc;
  bool IncOk = loadCnf(Inc, C);
  for (int Q = 0; Q < 6; ++Q) {
    std::vector<Lit> Assumps;
    int NumA = 1 + static_cast<int>(R.below(3));
    for (int K = 0; K < NumA; ++K) {
      Var V = static_cast<Var>(R.below(static_cast<uint64_t>(C.NumVars)));
      Assumps.push_back(Lit(V, R.chance(0.5)));
    }
    SatSolver Scratch;
    bool ScratchOk = loadCnf(Scratch, C);
    for (Lit A : Assumps)
      ScratchOk = Scratch.addClause(A) && ScratchOk;
    SatResult Want = ScratchOk ? Scratch.solve() : SatResult::Unsat;
    SatResult Got = IncOk ? Inc.solve(Assumps, SatBudget(), Cone)
                          : SatResult::Unsat;
    ASSERT_NE(Got, SatResult::Unknown);
    EXPECT_EQ(Got, Want) << "query " << Q;
    if (Got == SatResult::Sat) {
      // The lift phase completes the assignment, so the model must still
      // satisfy every clause — not just the cone.
      for (const auto &Cl : C.Clauses) {
        bool Any = false;
        for (Lit L : Cl)
          if (Inc.modelValue(L.var()) == !L.sign())
            Any = true;
        EXPECT_TRUE(Any) << "model violates a clause";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ConeParityTest, ::testing::Range(0, 20));

class ExternalConeSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(ExternalConeSoundnessTest, ArbitraryConesNeverChangeVerdicts) {
  // The solver must stay sound for ANY caller-supplied cone — including
  // ones that cut straight through clauses (the definitional cones the
  // query layer sends do exactly that). This stresses the skip-flagged
  // propagation, the restart-and-replay lift, and the exit catch-up:
  // verdicts must match scratch solving and Sat models must satisfy
  // every clause, not just the cone.
  Rng R(static_cast<uint64_t>(GetParam()) * 777769 + 13);
  RandomCnf C = makeRandomCnf(R);

  SatOptions Cone;
  Cone.ConeProjection = true;

  SatSolver Inc;
  bool IncOk = loadCnf(Inc, C);
  for (int Q = 0; Q < 8; ++Q) {
    std::vector<Lit> Assumps;
    int NumA = 1 + static_cast<int>(R.below(3));
    for (int K = 0; K < NumA; ++K) {
      Var V = static_cast<Var>(R.below(static_cast<uint64_t>(C.NumVars)));
      Assumps.push_back(Lit(V, R.chance(0.5)));
    }
    // A random subset of variables as the external cone.
    std::vector<Var> ConeVars;
    for (Var V = 0; V < C.NumVars; ++V)
      if (R.chance(0.4))
        ConeVars.push_back(V);

    SatSolver Scratch;
    bool ScratchOk = loadCnf(Scratch, C);
    for (Lit A : Assumps)
      ScratchOk = Scratch.addClause(A) && ScratchOk;
    SatResult Want = ScratchOk ? Scratch.solve() : SatResult::Unsat;
    SatResult Got = IncOk ? Inc.solve(Assumps, SatBudget(), Cone, &ConeVars)
                          : SatResult::Unsat;
    ASSERT_NE(Got, SatResult::Unknown);
    EXPECT_EQ(Got, Want) << "query " << Q;
    if (Got == SatResult::Sat) {
      for (Lit A : Assumps)
        EXPECT_EQ(Inc.modelValue(A.var()), !A.sign());
      for (const auto &Cl : C.Clauses) {
        bool Any = false;
        for (Lit L : Cl)
          if (Inc.modelValue(L.var()) == !L.sign())
            Any = true;
        EXPECT_TRUE(Any) << "model violates a clause outside the cone";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, ExternalConeSoundnessTest,
                         ::testing::Range(0, 30));

TEST(ConeProjection, CertificateRestrictedToQueryCone) {
  // Shared solver holding two independent encodings (the shared-learnt
  // pattern): after solving one query cone-projected, the certificate
  // must mention that query's variables and not the sibling's, while the
  // verdicts still match scratch solving.
  TermTable T;
  TermId XA = T.mkVar("xa");
  TermId XB = T.mkVar("xb");
  TermId DomA = T.mkUlt(XA, T.mkConst(100));
  TermId DomB = T.mkUlt(XB, T.mkConst(100));

  IncrementalSolver IS(T);
  // Only A's domain is shared context (context belongs to every cone);
  // the sibling query carries its own domain, so its variables are
  // genuinely outside A's cone.
  IS.assertAlways(DomA);
  SatOptions Cone;
  Cone.ConeProjection = true;
  IS.setOptions(Cone);

  // Sibling query first: its gates accumulate in the shared DB.
  TermId QB = T.mkAnd(DomB, T.mkEq(T.mkMul(XB, T.mkConst(3)),
                                   T.mkConst(33)));
  SmtResult RB = IS.check(QB);
  ASSERT_TRUE(RB.sat());
  EXPECT_GT(RB.ConeVars, 0u);

  // Query A, cone-projected against the now-larger DB.
  TermId QA = T.mkEq(T.mkAdd(XA, T.mkConst(5)), T.mkConst(17));
  SmtResult RA = IS.check(QA);
  ASSERT_TRUE(RA.sat());
  EXPECT_GT(RA.ConeVars, 0u);
  EXPECT_GT(RA.ConeClauses, 0u);

  // Certificate restriction: xa present (and correct), xb absent.
  auto ItA = RA.Model.find(XA);
  ASSERT_NE(ItA, RA.Model.end()) << "query variable missing from model";
  EXPECT_EQ(ItA->second, 12u);
  EXPECT_EQ(RA.Model.count(XB), 0u)
      << "sibling variable leaked into the cone certificate";

  // Scratch cross-check of both verdicts.
  EXPECT_TRUE(checkSat(T, T.mkAnd(DomA, QA)).sat());
  EXPECT_TRUE(checkSat(T, T.mkAnd(DomA, QB)).sat());

  // An unsatisfiable cone query must refute, not drift to Unknown.
  TermId QUnsat = T.mkAnd(T.mkEq(XA, T.mkConst(3)),
                          T.mkEq(XA, T.mkConst(4)));
  EXPECT_TRUE(IS.check(QUnsat).unsat());
}

//===----------------------------------------------------------------------===//
// Learnt-clause DB reduction
//===----------------------------------------------------------------------===//

TEST(SatIncremental, ReduceDBKeepsVerdictOnHardInstance) {
  // PHP(8,7) needs far more than the 2000-conflict first-reduce threshold,
  // so this exercises reduceDB (and usually the arena GC) mid-search.
  const int N = 8;
  SatSolver S;
  std::vector<std::vector<Var>> P(N, std::vector<Var>(N - 1));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I < N; ++I) {
    std::vector<Lit> C;
    for (int H = 0; H < N - 1; ++H)
      C.push_back(Lit(P[static_cast<size_t>(I)][static_cast<size_t>(H)],
                      false));
    S.addClause(C);
  }
  for (int H = 0; H < N - 1; ++H)
    for (int I = 0; I < N; ++I)
      for (int J = I + 1; J < N; ++J)
        S.addClause(
            Lit(P[static_cast<size_t>(I)][static_cast<size_t>(H)], true),
            Lit(P[static_cast<size_t>(J)][static_cast<size_t>(H)], true));
  EXPECT_EQ(S.solve(), SatResult::Unsat);
  EXPECT_GE(S.stats().ReduceDBs, 1u) << "expected at least one reduction";
  EXPECT_GT(S.stats().LearntDeleted, 0u);
  EXPECT_GT(S.stats().avgLBD(), 0.0);
}

//===----------------------------------------------------------------------===//
// IncrementalSolver facade vs one-shot checkSat
//===----------------------------------------------------------------------===//

class IncrementalFacadeTest : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalFacadeTest, AgreesWithOneShot) {
  Rng R(static_cast<uint64_t>(GetParam()) * 2654435761u + 3);
  TermTable T;
  TermId X = T.mkVar("x");
  TermId Y = T.mkVar("y");
  // Shared domain, as a verification task would assert.
  TermId Dom = T.mkAnd(T.mkUlt(X, T.mkConst(64)), T.mkUlt(Y, T.mkConst(64)));

  IncrementalSolver IS(T);
  IS.assertAlways(Dom);

  for (int Q = 0; Q < 6; ++Q) {
    uint32_t A = static_cast<uint32_t>(R.below(8));
    uint32_t B = static_cast<uint32_t>(R.below(128));
    TermId Sum = T.mkAdd(T.mkMul(X, T.mkConst(A)), Y);
    TermId Pred = R.chance(0.5) ? T.mkEq(Sum, T.mkConst(B))
                                : T.mkUlt(Sum, T.mkConst(B));
    if (R.chance(0.3))
      Pred = T.mkNot(Pred);

    SmtResult Incr = IS.check(Pred);
    SmtResult Shot = checkSat(T, T.mkAnd(Dom, Pred));
    ASSERT_FALSE(Incr.unknown());
    ASSERT_FALSE(Shot.unknown());
    EXPECT_EQ(Incr.R, Shot.R) << "query " << Q;
    if (Incr.sat()) {
      std::unordered_map<TermId, uint32_t> Env = Incr.Model;
      EXPECT_TRUE(T.evalBool(T.mkAnd(Dom, Pred), Env))
          << "incremental model does not satisfy query";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, IncrementalFacadeTest,
                         ::testing::Range(0, 20));

//===----------------------------------------------------------------------===//
// Stage-4 spatial splitting: incremental vs scratch (seed behaviour)
//===----------------------------------------------------------------------===//

namespace stage4 {

const char *ScalarAdd1 =
    "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
    "a[i] = b[i] + 1; }";
const char *VectorAdd1 = R"(
  void f(int n, int *a, int *b) {
    __m256i one = _mm256_set1_epi32(1);
    for (int i = 0; i < n; i += 8) {
      __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
      _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
    }
  })";
const char *VectorAdd2 = R"(
  void f(int n, int *a, int *b) {
    __m256i two = _mm256_set1_epi32(2);
    for (int i = 0; i < n; i += 8) {
      __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
      _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, two));
    }
  })";

/// Funnel config that forces the decision onto stage 4.
core::EquivConfig splittingOnly(bool Incremental) {
  core::EquivConfig Cfg;
  Cfg.EnableAlive2 = false;
  Cfg.EnableCUnroll = false;
  Cfg.EnableSplitting = true;
  Cfg.IncrementalSolving = Incremental;
  return Cfg;
}

} // namespace stage4

TEST(SpatialSplittingRegression, EquivalentPairIdenticalVerdicts) {
  core::EquivResult Inc = core::checkEquivalence(
      stage4::ScalarAdd1, stage4::VectorAdd1, stage4::splittingOnly(true));
  core::EquivResult Scr = core::checkEquivalence(
      stage4::ScalarAdd1, stage4::VectorAdd1, stage4::splittingOnly(false));

  EXPECT_EQ(Inc.Final, core::EquivResult::Equivalent) << Inc.Detail;
  EXPECT_EQ(Inc.Final, Scr.Final);
  EXPECT_EQ(Inc.DecidedBy, core::Stage::Splitting);
  EXPECT_EQ(Inc.DecidedBy, Scr.DecidedBy);
  ASSERT_EQ(Inc.SplitRes.size(), Scr.SplitRes.size());
  for (size_t I = 0; I < Inc.SplitRes.size(); ++I)
    EXPECT_EQ(Inc.SplitRes[I].V, Scr.SplitRes[I].V) << "cell " << I;
}

TEST(SpatialSplittingRegression, InequivalentPairIdenticalVerdicts) {
  // Disable checksum runs so the broken candidate reaches the formal
  // stages (the paper relies on testing to catch this; here we want the
  // splitting stage itself to refute it).
  core::EquivConfig Inc4 = stage4::splittingOnly(true);
  Inc4.Checksum.NValues.clear();
  core::EquivConfig Scr4 = stage4::splittingOnly(false);
  Scr4.Checksum.NValues.clear();

  core::EquivResult Inc = core::checkEquivalence(stage4::ScalarAdd1,
                                                 stage4::VectorAdd2, Inc4);
  core::EquivResult Scr = core::checkEquivalence(stage4::ScalarAdd1,
                                                 stage4::VectorAdd2, Scr4);

  EXPECT_EQ(Inc.Final, core::EquivResult::Inequivalent) << Inc.Detail;
  EXPECT_EQ(Inc.Final, Scr.Final);
  EXPECT_EQ(Inc.DecidedBy, core::Stage::Splitting);
  EXPECT_EQ(Inc.DecidedBy, Scr.DecidedBy);
  ASSERT_EQ(Inc.SplitRes.size(), Scr.SplitRes.size());
  for (size_t I = 0; I < Inc.SplitRes.size(); ++I)
    EXPECT_EQ(Inc.SplitRes[I].V, Scr.SplitRes[I].V) << "cell " << I;
  EXPECT_FALSE(Inc.Counterexample.empty());
}

TEST(SpatialSplittingRegression, SharedLearntFunnelMatchesForkVerdicts) {
  // End-to-end stage-4 regression: the shared-learnt + cone + reuse
  // configuration must reproduce the fork-per-query verdicts on the
  // bundled equivalent pair.
  core::EquivConfig Fork = stage4::splittingOnly(true);
  Fork.SharedLearntSolving = false;
  Fork.ConeProjection = false;
  Fork.TrailReuse = false;
  core::EquivConfig Shared = stage4::splittingOnly(true);
  Shared.SharedLearntSolving = true;
  Shared.ConeProjection = true;
  Shared.TrailReuse = true;

  core::EquivResult F = core::checkEquivalence(stage4::ScalarAdd1,
                                               stage4::VectorAdd1, Fork);
  core::EquivResult S = core::checkEquivalence(stage4::ScalarAdd1,
                                               stage4::VectorAdd1, Shared);
  EXPECT_EQ(F.Final, core::EquivResult::Equivalent) << F.Detail;
  EXPECT_EQ(S.Final, F.Final);
  EXPECT_EQ(S.DecidedBy, F.DecidedBy);
  ASSERT_EQ(S.SplitRes.size(), F.SplitRes.size());
  for (size_t I = 0; I < S.SplitRes.size(); ++I)
    EXPECT_EQ(S.SplitRes[I].V, F.SplitRes[I].V) << "cell " << I;
}

TEST(SpatialSplittingRegression, IncrementalSharesOneEncoding) {
  // With a shared session the per-cell clause counts must be cumulative
  // over one encoding, not cells-many re-blasts: the *first* cell carries
  // nearly all blasting work and later cells add only their compare terms.
  core::EquivResult Inc = core::checkEquivalence(
      stage4::ScalarAdd1, stage4::VectorAdd1, stage4::splittingOnly(true));
  ASSERT_GE(Inc.SplitRes.size(), 2u);
  uint64_t First = Inc.SplitRes.front().Clauses;
  uint64_t Last = Inc.SplitRes.back().Clauses;
  ASSERT_GT(First, 0u);
  // Cumulative growth across all later cells stays small relative to the
  // shared encoding.
  EXPECT_LT(Last - First, First / 2)
      << "per-cell queries appear to re-blast the shared encoding";
}

} // namespace
