//===- tests/test_smt.cpp - SMT substrate tests -----------------------------===//
//
// Unit and property tests for the term rewriter, the CDCL SAT core, and the
// bit-blaster. The property suites cross-validate: (1) random term DAGs are
// solved and any model is re-evaluated against the term semantics; (2) UNSAT
// answers on small-domain queries are checked by exhaustive enumeration.
//
//===----------------------------------------------------------------------===//

#include "smt/Blast.h"
#include "smt/Sat.h"
#include "smt/Solve.h"
#include "smt/Term.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace lv;
using namespace lv::smt;

namespace {

//===----------------------------------------------------------------------===//
// Term rewriter
//===----------------------------------------------------------------------===//

TEST(Term, ConstantFolding) {
  TermTable T;
  EXPECT_EQ(T.mkAdd(T.mkConst(2), T.mkConst(3)), T.mkConst(5));
  EXPECT_EQ(T.mkMul(T.mkConst(6), T.mkConst(7)), T.mkConst(42));
  EXPECT_EQ(T.mkSub(T.mkConst(2), T.mkConst(3)), T.mkConst(0xffffffffu));
  EXPECT_TRUE(T.isTrue(T.mkSlt(T.mkConstS(-1), T.mkConst(0))));
  EXPECT_TRUE(T.isFalse(T.mkUlt(T.mkConstS(-1), T.mkConst(0))));
}

TEST(Term, IdentityRules) {
  TermTable T;
  TermId X = T.mkVar("x");
  EXPECT_EQ(T.mkAdd(X, T.mkConst(0)), X);
  EXPECT_EQ(T.mkMul(X, T.mkConst(1)), X);
  EXPECT_EQ(T.mkMul(X, T.mkConst(0)), T.mkConst(0));
  EXPECT_EQ(T.mkSub(X, X), T.mkConst(0));
  EXPECT_EQ(T.mkBvXor(X, X), T.mkConst(0));
  EXPECT_EQ(T.mkBvAnd(X, T.mkConst(0xffffffffu)), X);
  EXPECT_TRUE(T.isTrue(T.mkEq(X, X)));
}

TEST(Term, RewriteMemoReplaysIdenticalIds) {
  // The rewrite memo ((kind, operands) -> constructor result) must replay
  // without re-running the simplification chain or interning anything new.
  TermTable T;
  TermId X = T.mkVar("x"), Y = T.mkVar("y");
  auto build = [&] {
    TermId A = T.mkAdd(T.mkMul(X, Y), T.mkConst(4));
    TermId B = T.mkIte(T.mkSlt(X, Y), A, T.mkSub(A, X));
    return T.mkEq(B, T.mkAdd(X, T.mkConst(1)));
  };
  TermId First = build();
  uint64_t MissesAfterFirst = T.rewriteMemoMisses();
  size_t TermsAfterFirst = T.size();
  TermId Second = build();
  EXPECT_EQ(First, Second);
  EXPECT_EQ(T.size(), TermsAfterFirst);
  EXPECT_EQ(T.rewriteMemoMisses(), MissesAfterFirst); // pure replay
  EXPECT_GT(T.rewriteMemoHits(), 0u);
}

TEST(Term, RewriteMemoSurvivesGrowth) {
  // Push well past the initial memo capacity (4096) so the open-addressing
  // table rehashes, then verify every application still replays.
  TermTable T;
  TermId X = T.mkVar("x");
  std::vector<TermId> Sums;
  for (int I = 0; I < 10000; ++I)
    Sums.push_back(T.mkAdd(X, T.mkConst(static_cast<uint32_t>(I))));
  uint64_t Hits = T.rewriteMemoHits();
  for (int I = 0; I < 10000; ++I)
    ASSERT_EQ(T.mkAdd(X, T.mkConst(static_cast<uint32_t>(I))),
              Sums[static_cast<size_t>(I)]);
  EXPECT_GE(T.rewriteMemoHits(), Hits + 10000);
}

TEST(Term, HashConsing) {
  TermTable T;
  TermId X = T.mkVar("x");
  TermId Y = T.mkVar("y");
  EXPECT_EQ(T.mkAdd(X, Y), T.mkAdd(Y, X)) << "commutative normalization";
  EXPECT_EQ(T.mkAdd(T.mkAdd(X, T.mkConst(1)), T.mkConst(2)),
            T.mkAdd(X, T.mkConst(3)))
      << "constant chains flatten";
}

TEST(Term, SubNormalizesToAddConst) {
  TermTable T;
  TermId X = T.mkVar("x");
  // x - 3 == x + (-3): index normalization for memory resolution.
  EXPECT_EQ(T.mkSub(X, T.mkConst(3)),
            T.mkAdd(X, T.mkConst(static_cast<uint32_t>(-3))));
}

TEST(Term, BoolRules) {
  TermTable T;
  TermId A = T.mkBVar("a");
  EXPECT_TRUE(T.isFalse(T.mkAnd(A, T.mkNot(A))));
  EXPECT_TRUE(T.isTrue(T.mkOr(A, T.mkNot(A))));
  EXPECT_EQ(T.mkNot(T.mkNot(A)), A);
  EXPECT_EQ(T.mkAnd(A, T.mkTrue()), A);
  EXPECT_EQ(T.mkBIte(A, T.mkTrue(), T.mkFalse()), A);
}

TEST(Term, SRemPowerOfTwoRewrite) {
  TermTable T;
  TermId X = T.mkVar("x");
  TermId R = T.mkSRem(X, T.mkConst(8));
  // Must not remain an SRem node (rewritten to sign-aware masking).
  EXPECT_NE(T.get(R).K, TK::SRem);
  // Semantics check across signs.
  std::unordered_map<TermId, uint32_t> Env;
  for (int32_t V : {13, -13, 8, -8, 0, 7, -7, 1000001, -999999}) {
    Env[X] = static_cast<uint32_t>(V);
    EXPECT_EQ(static_cast<int32_t>(T.evalBv(R, Env)), V % 8) << V;
  }
}

TEST(Term, EvalMatchesConstFold) {
  TermTable T;
  std::unordered_map<TermId, uint32_t> Env;
  TermId E = T.mkMul(T.mkAdd(T.mkConst(3), T.mkConst(4)), T.mkConst(5));
  EXPECT_EQ(T.evalBv(E, Env), 35u);
}

//===----------------------------------------------------------------------===//
// SAT core
//===----------------------------------------------------------------------===//

TEST(Sat, TrivialSat) {
  SatSolver S;
  Var A = S.newVar();
  Var B = S.newVar();
  S.addClause(Lit(A, false), Lit(B, false));
  S.addClause(Lit(A, true));
  EXPECT_EQ(S.solve(), SatResult::Sat);
  EXPECT_FALSE(S.modelValue(A));
  EXPECT_TRUE(S.modelValue(B));
}

TEST(Sat, TrivialUnsat) {
  SatSolver S;
  Var A = S.newVar();
  S.addClause(Lit(A, false));
  S.addClause(Lit(A, true));
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): 3 pigeons, 2 holes.
  SatSolver S;
  Var P[3][2];
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I < 3; ++I)
    S.addClause(Lit(P[I][0], false), Lit(P[I][1], false));
  for (int H = 0; H < 2; ++H)
    for (int I = 0; I < 3; ++I)
      for (int J = I + 1; J < 3; ++J)
        S.addClause(Lit(P[I][H], true), Lit(P[J][H], true));
  EXPECT_EQ(S.solve(), SatResult::Unsat);
}

TEST(Sat, BudgetProducesUnknown) {
  // PHP(8,7) is exponentially hard for resolution; a tiny conflict budget
  // must give Unknown rather than hang.
  const int N = 8;
  SatSolver S;
  std::vector<std::vector<Var>> P(N, std::vector<Var>(N - 1));
  for (auto &Row : P)
    for (Var &V : Row)
      V = S.newVar();
  for (int I = 0; I < N; ++I) {
    std::vector<Lit> C;
    for (int H = 0; H < N - 1; ++H)
      C.push_back(Lit(P[static_cast<size_t>(I)][static_cast<size_t>(H)],
                      false));
    S.addClause(C);
  }
  for (int H = 0; H < N - 1; ++H)
    for (int I = 0; I < N; ++I)
      for (int J = I + 1; J < N; ++J)
        S.addClause(
            Lit(P[static_cast<size_t>(I)][static_cast<size_t>(H)], true),
            Lit(P[static_cast<size_t>(J)][static_cast<size_t>(H)], true));
  SatBudget B;
  B.MaxConflicts = 50;
  EXPECT_EQ(S.solve(B), SatResult::Unknown);
}

/// Random 3-SAT instances cross-checked against brute force (<= 12 vars).
class SatRandom3SatTest : public ::testing::TestWithParam<int> {};

TEST_P(SatRandom3SatTest, AgreesWithBruteForce) {
  Rng R(static_cast<uint64_t>(GetParam()) * 7919 + 17);
  int NumVars = 4 + static_cast<int>(R.below(9)); // 4..12
  int NumClauses = static_cast<int>(R.below(50)) + 5;
  std::vector<std::vector<int>> Clauses; // +v / -v encoding, 1-based
  for (int C = 0; C < NumClauses; ++C) {
    std::vector<int> Cl;
    for (int K = 0; K < 3; ++K) {
      int V = 1 + static_cast<int>(R.below(static_cast<uint64_t>(NumVars)));
      Cl.push_back(R.chance(0.5) ? V : -V);
    }
    Clauses.push_back(Cl);
  }
  // Brute force.
  bool BruteSat = false;
  for (uint32_t M = 0; M < (1u << NumVars) && !BruteSat; ++M) {
    bool All = true;
    for (const auto &Cl : Clauses) {
      bool Any = false;
      for (int L : Cl) {
        int V = std::abs(L) - 1;
        bool Val = (M >> V) & 1;
        if ((L > 0) == Val) {
          Any = true;
          break;
        }
      }
      if (!Any) {
        All = false;
        break;
      }
    }
    BruteSat = All;
  }
  // Solver.
  SatSolver S;
  std::vector<Var> Vars;
  for (int I = 0; I < NumVars; ++I)
    Vars.push_back(S.newVar());
  bool Ok = true;
  for (const auto &Cl : Clauses) {
    std::vector<Lit> Ls;
    for (int L : Cl)
      Ls.push_back(Lit(Vars[static_cast<size_t>(std::abs(L) - 1)], L < 0));
    Ok = S.addClause(Ls) && Ok;
  }
  SatResult Res = Ok ? S.solve() : SatResult::Unsat;
  ASSERT_NE(Res, SatResult::Unknown);
  EXPECT_EQ(Res == SatResult::Sat, BruteSat);
  if (Res == SatResult::Sat) {
    // Verify the model satisfies every clause.
    for (const auto &Cl : Clauses) {
      bool Any = false;
      for (int L : Cl) {
        bool Val = S.modelValue(Vars[static_cast<size_t>(std::abs(L) - 1)]);
        if ((L > 0) == Val)
          Any = true;
      }
      EXPECT_TRUE(Any) << "model violates a clause";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Random, SatRandom3SatTest, ::testing::Range(0, 40));

//===----------------------------------------------------------------------===//
// Bit-blaster end-to-end through checkSat
//===----------------------------------------------------------------------===//

TEST(Smt, SimpleArithmeticSat) {
  TermTable T;
  TermId X = T.mkVar("x");
  // x + 1 == 10 is satisfiable with x = 9.
  SmtResult R = checkSat(T, T.mkEq(T.mkAdd(X, T.mkConst(1)), T.mkConst(10)));
  ASSERT_TRUE(R.sat());
  EXPECT_EQ(R.Model.at(X), 9u);
}

TEST(Smt, UnsatArithmetic) {
  TermTable T;
  TermId X = T.mkVar("x");
  // x < 5 && x > 7 (signed) is unsat.
  TermId Q = T.mkAnd(T.mkSlt(X, T.mkConst(5)), T.mkSgt(X, T.mkConst(7)));
  EXPECT_TRUE(checkSat(T, Q).unsat());
}

TEST(Smt, MulCommutesUnsat) {
  TermTable T;
  TermId X = T.mkVar("x");
  TermId Y = T.mkVar("y");
  // x*y != y*x is unsat — rewriter handles it without the SAT core.
  TermId Q = T.mkNe(T.mkMul(X, Y), T.mkMul(Y, X));
  SmtResult R = checkSat(T, Q);
  EXPECT_TRUE(R.unsat());
  EXPECT_EQ(R.ConflictsUsed, 0u) << "should simplify away syntactically";
}

TEST(Smt, MulDistributesOverAddSmallDomain) {
  TermTable T;
  TermId X = T.mkVar("x");
  TermId Y = T.mkVar("y");
  TermId Z = T.mkVar("z");
  // x*(y+z) != x*y + x*z is unsat. Over full 32-bit inputs this is a hard
  // multiplier-equivalence instance (see MulEquivalenceTimesOut below); with
  // the operands constrained to 4 bits unit propagation collapses the
  // partial products and the proof takes a few thousand conflicts.
  TermId Dom = T.mkAnd(
      T.mkAnd(T.mkUlt(X, T.mkConst(16)), T.mkUlt(Y, T.mkConst(16))),
      T.mkUlt(Z, T.mkConst(16)));
  TermId L = T.mkMul(X, T.mkAdd(Y, Z));
  TermId R0 = T.mkAdd(T.mkMul(X, Y), T.mkMul(X, Z));
  SmtResult R = checkSat(T, T.mkAnd(Dom, T.mkNe(L, R0)));
  EXPECT_TRUE(R.unsat());
}

TEST(Smt, MulEquivalenceTimesOut) {
  // The unconstrained distributivity query is exponentially hard for
  // resolution-based SAT — the same effect that makes Alive2 time out on
  // multiplication-heavy unrollings (paper §3.1). A small budget must
  // return Unknown promptly rather than hang.
  TermTable T;
  TermId X = T.mkVar("x");
  TermId Y = T.mkVar("y");
  TermId Z = T.mkVar("z");
  TermId L = T.mkMul(X, T.mkAdd(Y, Z));
  TermId R0 = T.mkAdd(T.mkMul(X, Y), T.mkMul(X, Z));
  SatBudget B;
  B.MaxConflicts = 2'000;
  SmtResult R = checkSat(T, T.mkNe(L, R0), B);
  EXPECT_TRUE(R.unknown());
}

TEST(Smt, AddOverflowPredicateCounterexample) {
  TermTable T;
  TermId X = T.mkVar("x");
  // AddOvf(x, 1) is satisfiable only by x = INT32_MAX.
  SmtResult R = checkSat(T, T.mkAddOvf(X, T.mkConst(1)));
  ASSERT_TRUE(R.sat());
  EXPECT_EQ(R.Model.at(X), 0x7fffffffu);
}

TEST(Smt, SDivSemantics) {
  TermTable T;
  TermId X = T.mkVar("x");
  // x / -2 == 3 && x == -7: -7 / -2 == 3 (truncation toward zero).
  TermId Q = T.mkAnd(
      T.mkEq(T.mkSDiv(X, T.mkConstS(-2)), T.mkConst(3)),
      T.mkEq(X, T.mkConstS(-7)));
  EXPECT_TRUE(checkSat(T, Q).sat());
}

TEST(Smt, ShiftBySymbolicAmount) {
  TermTable T;
  TermId X = T.mkVar("x");
  TermId S = T.mkVar("s");
  // (1 << s) == 16 forces s&31 == 4.
  TermId Q = T.mkAnd(T.mkEq(T.mkShl(T.mkConst(1), S), T.mkConst(16)),
                     T.mkEq(X, X));
  SmtResult R = checkSat(T, Q);
  ASSERT_TRUE(R.sat());
  EXPECT_EQ(R.Model.at(S) & 31u, 4u);
}

/// Random term DAGs: if Sat, the model must evaluate the query to true;
/// cross-validated with the term evaluator.
class SmtRandomTermTest : public ::testing::TestWithParam<int> {};

TEST_P(SmtRandomTermTest, ModelsEvaluateTrue) {
  Rng R(static_cast<uint64_t>(GetParam()) * 104729 + 1);
  TermTable T;
  std::vector<TermId> Vars = {T.mkVar("a"), T.mkVar("b"), T.mkVar("c")};
  std::vector<TermId> Pool = Vars;
  for (int I = 0; I < 4; ++I)
    Pool.push_back(T.mkConst(static_cast<uint32_t>(R.below(16)) - 6));
  // Grow random BV expressions.
  for (int I = 0; I < 12; ++I) {
    TermId A = Pool[R.below(Pool.size())];
    TermId B = Pool[R.below(Pool.size())];
    switch (R.below(6)) {
    case 0: Pool.push_back(T.mkAdd(A, B)); break;
    case 1: Pool.push_back(T.mkSub(A, B)); break;
    case 2: Pool.push_back(T.mkMul(A, B)); break;
    case 3: Pool.push_back(T.mkBvAnd(A, B)); break;
    case 4: Pool.push_back(T.mkBvXor(A, B)); break;
    case 5:
      Pool.push_back(T.mkIte(T.mkSlt(A, B), A, B));
      break;
    }
  }
  // Random boolean query over the pool.
  TermId Q = T.mkFalse();
  for (int I = 0; I < 3; ++I) {
    TermId A = Pool[R.below(Pool.size())];
    TermId B = Pool[R.below(Pool.size())];
    TermId Atom = R.chance(0.5) ? T.mkEq(A, B) : T.mkSlt(A, B);
    if (R.chance(0.3))
      Atom = T.mkNot(Atom);
    Q = R.chance(0.5) ? T.mkOr(Q, Atom) : T.mkAnd(T.mkOr(Q, Atom), Atom);
  }
  SmtResult Res = checkSat(T, Q);
  if (Res.unknown())
    GTEST_SKIP() << "budget exhausted on random instance";
  if (Res.sat() && !T.isTrue(Q)) {
    std::unordered_map<TermId, uint32_t> Env = Res.Model;
    EXPECT_TRUE(T.evalBool(Q, Env))
        << "model does not satisfy query: " << T.print(Q);
  }
  // Also: Q && !Q must always be unsat.
  EXPECT_TRUE(checkSat(T, T.mkAnd(Q, T.mkNot(Q))).unsat());
}

INSTANTIATE_TEST_SUITE_P(Random, SmtRandomTermTest, ::testing::Range(0, 30));

/// Exhaustive small-domain check: for queries over one 4-bit-constrained
/// variable, Unsat answers are verified by enumeration.
class SmtExhaustiveTest : public ::testing::TestWithParam<int> {};

TEST_P(SmtExhaustiveTest, UnsatMeansNoWitness) {
  Rng R(static_cast<uint64_t>(GetParam()) * 31337 + 5);
  TermTable T;
  TermId X = T.mkVar("x");
  // Constrain x to [0, 16).
  TermId Dom = T.mkUlt(X, T.mkConst(16));
  // Random predicate over x.
  TermId A = T.mkAdd(T.mkMul(X, T.mkConst(static_cast<uint32_t>(R.below(7)))),
                     T.mkConst(static_cast<uint32_t>(R.below(30))));
  TermId B = T.mkConst(static_cast<uint32_t>(R.below(90)));
  TermId Pred = R.chance(0.5) ? T.mkEq(A, B) : T.mkUlt(A, B);
  if (R.chance(0.4))
    Pred = T.mkNot(Pred);
  TermId Q = T.mkAnd(Dom, Pred);

  SmtResult Res = checkSat(T, Q);
  ASSERT_FALSE(Res.unknown());
  bool Witness = false;
  std::unordered_map<TermId, uint32_t> Env;
  for (uint32_t V = 0; V < 16; ++V) {
    Env[X] = V;
    if (T.evalBool(Q, Env)) {
      Witness = true;
      break;
    }
  }
  EXPECT_EQ(Res.sat(), Witness);
}

INSTANTIATE_TEST_SUITE_P(Random, SmtExhaustiveTest, ::testing::Range(0, 50));

} // namespace
