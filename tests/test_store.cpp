//===- tests/test_store.cpp - persistent result-store tests -------------------===//
//
// The store contract: (1) round-trips are bit-exact — a reopened store
// replays the serialized EquivResult / ChecksumOutcome / BytecodeProgram
// byte for byte; (2) it never returns a wrong verdict — key collisions and
// damaged bytes (torn tail, flipped bits, incompatible header) all degrade
// to misses, with the damaged suffix dropped and the log repaired in
// place; (3) warm starts are invisible — a fresh VectorizerService over a
// populated store produces debugString output byte-identical to a cold
// run, at any worker count.
//
//===----------------------------------------------------------------------===//

#include "store/Store.h"
#include "support/Rng.h"
#include "svc/Service.h"
#include "tsvc/Suite.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

using namespace lv;
using namespace lv::store;
namespace fs = std::filesystem;

namespace {

/// Fresh scratch directory per test (removed up front so reruns and
/// crashed prior runs never leak state in).
std::string scratchDir(const char *Name) {
  fs::path P = fs::temp_directory_path() / "lv_store_test" / Name;
  std::error_code EC;
  fs::remove_all(P, EC);
  return P.string();
}

std::string logPath(const std::string &Dir) { return Dir + "/records.log"; }

std::string readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(In)),
                     std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::string &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
}

/// A synthetic EquivResult exercising every serialized field, varied by
/// \p I so distinct entries are distinguishable.
core::EquivResult mkEquiv(int I) {
  core::EquivResult R;
  R.Final = core::EquivResult::Equivalent;
  R.DecidedBy = core::Stage::CUnroll;
  R.Detail = "cunroll decided #" + std::to_string(I);
  R.Counterexample = I % 2 ? "a[3] = 7 vs 9" : "";
  R.ChecksumRes.Verdict = interp::TestVerdict::Plausible;
  R.ChecksumRes.Detail = "plausible";
  R.ChecksumRes.Work.InputSets = 6;
  R.ChecksumRes.Work.CandRuns = 6;
  R.ChecksumRes.Work.Cand.Instrs = 100 + static_cast<uint64_t>(I);
  R.ChecksumRes.Work.Cand.Hist[0] = 17;
  R.Alive2Res.V = tv::TVVerdict::Inconclusive;
  R.Alive2Res.Conflicts = 100;
  R.Alive2Res.Propagations = 2000;
  R.Alive2Res.AvgLBD = 3.25;
  R.Alive2Res.Detail = "budget";
  R.CUnrollRes.V = tv::TVVerdict::Equivalent;
  R.CUnrollRes.Conflicts = 40 + static_cast<uint64_t>(I);
  R.CUnrollRes.PortfolioArm = 1;
  R.CUnrollRes.FastConflicts = 12;
  R.SplitRes.resize(2);
  R.SplitRes[0].V = tv::TVVerdict::Equivalent;
  R.SplitRes[0].TrailReused = 9;
  R.SplitRes[1].V = tv::TVVerdict::Inconclusive;
  R.SplittingEligible = true;
  R.ChecksumNanos = 111;
  R.Alive2Nanos = 222;
  R.CUnrollNanos = 333;
  R.SplitNanos = 444;
  return R;
}

interp::ChecksumOutcome mkChecksum(int I) {
  interp::ChecksumOutcome O;
  O.Verdict = interp::TestVerdict::NotEquivalent;
  O.FirstMismatch.Where = "region a index " + std::to_string(I);
  O.FirstMismatch.N = 8;
  O.FirstMismatch.Expected = 5;
  O.FirstMismatch.Actual = -5;
  O.Detail = "mismatch";
  O.Work.InputSets = 3;
  O.Work.CandRuns = 3;
  O.Work.ScalarRuns = 3;
  O.Work.Cand.Instrs = 64;
  O.Work.CandTrap = interp::TrapKind::None;
  return O;
}

interp::BytecodeProgram mkProgram(int I) {
  interp::BytecodeProgram P;
  P.Code.resize(3);
  P.Code[0].Op = interp::BC::Halt;
  P.Code[0].Cls = 1;
  P.Code[0].Rd = 2;
  P.Code[0].Imm = 42 + I;
  P.Extra = {1, 2, 3};
  P.NumRegs = 7;
  P.ReturnsValue = true;
  P.Params.resize(1);
  P.Params[0].IsPointer = true;
  P.Params[0].Reg = 0;
  P.Mems.resize(1);
  P.Mems[0].Name = "a";
  P.Mems[0].LocalSize = 0;
  P.Key = "prog-key-" + std::to_string(I);
  return P;
}

/// Seeds \p S with \p N equiv + checksum records (distinct keys and
/// sources) and one program per index.
void seed(ResultStore &S, int N) {
  for (int I = 0; I < N; ++I) {
    std::string Scalar = "scalar-" + std::to_string(I);
    std::string Cand = "cand-" + std::to_string(I);
    uint64_t SH = hashString(Scalar.c_str());
    uint64_t CH = hashString(Cand.c_str());
    S.storeEquiv(SH, CH, 7, Scalar, Cand, mkEquiv(I));
    S.storeChecksum(SH, CH, 9, Scalar, Cand, mkChecksum(I));
    S.storeProgram(mkProgram(I));
  }
}

/// Counts how many of the first \p N seeded equiv entries replay
/// bit-identically from \p S.
int equivReplays(ResultStore &S, int N) {
  int Ok = 0;
  for (int I = 0; I < N; ++I) {
    std::string Scalar = "scalar-" + std::to_string(I);
    std::string Cand = "cand-" + std::to_string(I);
    core::EquivResult Out;
    if (S.lookupEquiv(hashString(Scalar.c_str()), hashString(Cand.c_str()),
                      7, Scalar, Cand, Out) &&
        serializeEquivResult(Out) == serializeEquivResult(mkEquiv(I)))
      ++Ok;
  }
  return Ok;
}

TEST(Store, RoundTripBitExactAcrossReopen) {
  std::string Dir = scratchDir("roundtrip");
  {
    ResultStore S(Dir);
    ASSERT_TRUE(S.ok());
    seed(S, 4);
    EXPECT_EQ(S.stats().Writes, 12u);
  }
  ResultStore S(Dir);
  EXPECT_EQ(S.stats().LoadedEquiv, 4u);
  EXPECT_EQ(S.stats().LoadedChecksum, 4u);
  EXPECT_EQ(S.stats().LoadedPrograms, 4u);
  EXPECT_EQ(equivReplays(S, 4), 4);
  interp::ChecksumOutcome CO;
  ASSERT_TRUE(S.lookupChecksum(hashString("scalar-2"), hashString("cand-2"),
                               9, "scalar-2", "cand-2", CO));
  EXPECT_EQ(serializeChecksumOutcome(CO),
            serializeChecksumOutcome(mkChecksum(2)));
  std::shared_ptr<const interp::BytecodeProgram> P =
      S.lookupProgram("prog-key-3");
  ASSERT_TRUE(P != nullptr);
  EXPECT_EQ(serializeProgram(*P), serializeProgram(mkProgram(3)));
  EXPECT_EQ(S.lookupProgram("prog-key-99"), nullptr);
}

TEST(Store, KeyCollisionDegradesToMiss) {
  std::string Dir = scratchDir("collision");
  ResultStore S(Dir);
  S.storeEquiv(1, 2, 3, "the-scalar", "the-cand", mkEquiv(0));
  core::EquivResult Out;
  // Same 64-bit key triple, different source text: must miss, never
  // replay the other pair's verdict.
  EXPECT_FALSE(S.lookupEquiv(1, 2, 3, "другой-scalar", "the-cand", Out));
  EXPECT_FALSE(S.lookupEquiv(1, 2, 3, "the-scalar", "another-cand", Out));
  EXPECT_TRUE(S.lookupEquiv(1, 2, 3, "the-scalar", "the-cand", Out));
  StoreStats St = S.stats();
  EXPECT_EQ(St.Hits, 1u);
  EXPECT_EQ(St.Misses, 2u);
}

TEST(Store, DuplicateKeyWritesOnce) {
  std::string Dir = scratchDir("dedup");
  {
    ResultStore S(Dir);
    S.storeEquiv(1, 2, 3, "s", "c", mkEquiv(0));
    S.storeEquiv(1, 2, 3, "s", "c", mkEquiv(0));
    S.storeProgram(mkProgram(0));
    S.storeProgram(mkProgram(0));
    EXPECT_EQ(S.stats().Writes, 2u);
  }
  ResultStore S(Dir);
  EXPECT_EQ(S.stats().LoadedEquiv, 1u);
  EXPECT_EQ(S.stats().LoadedPrograms, 1u);
}

TEST(Store, TruncatedTailDropsOnlyTornRecord) {
  std::string Dir = scratchDir("truncate");
  {
    ResultStore S(Dir);
    seed(S, 3);
  }
  // Chop into the last record, simulating a process killed mid-append.
  uintmax_t Full = fs::file_size(logPath(Dir));
  fs::resize_file(logPath(Dir), Full - 5);
  {
    ResultStore S(Dir);
    StoreStats St = S.stats();
    EXPECT_EQ(St.CorruptSkipped, 1u);
    // 9 records survive: the torn one (the third program) is gone.
    EXPECT_EQ(St.LoadedEquiv + St.LoadedChecksum + St.LoadedPrograms, 8u);
    EXPECT_EQ(equivReplays(S, 3), 3);
    EXPECT_EQ(S.lookupProgram("prog-key-2"), nullptr);
  }
  // The load truncated the log back to the last good record, so a
  // re-open is clean and appends resume from there.
  {
    ResultStore S(Dir);
    EXPECT_EQ(S.stats().CorruptSkipped, 0u);
    S.storeProgram(mkProgram(2));
  }
  ResultStore S(Dir);
  EXPECT_EQ(S.stats().CorruptSkipped, 0u);
  EXPECT_NE(S.lookupProgram("prog-key-2"), nullptr);
}

TEST(Store, FlippedByteDropsDamagedSuffix) {
  std::string Dir = scratchDir("biflip");
  {
    ResultStore S(Dir);
    seed(S, 3);
  }
  // Flip one byte a little past the first record: everything from the
  // damaged record on is suspect and must be dropped; the intact prefix
  // replays bit-identically.
  std::string Bytes = readFile(logPath(Dir));
  ASSERT_GT(Bytes.size(), 120u);
  Bytes[120] = static_cast<char>(Bytes[120] ^ 0x40);
  writeFile(logPath(Dir), Bytes);
  ResultStore S(Dir);
  StoreStats St = S.stats();
  EXPECT_EQ(St.CorruptSkipped, 1u);
  uint64_t Loaded = St.LoadedEquiv + St.LoadedChecksum + St.LoadedPrograms;
  EXPECT_LT(Loaded, 9u);
  // Whatever survived replays exactly; entry 0 precedes byte 120 only if
  // the first record is shorter than that, so just assert per-entry
  // consistency: a hit must be bit-identical.
  for (int I = 0; I < 3; ++I) {
    std::string Scalar = "scalar-" + std::to_string(I);
    std::string Cand = "cand-" + std::to_string(I);
    core::EquivResult Out;
    if (S.lookupEquiv(hashString(Scalar.c_str()), hashString(Cand.c_str()),
                      7, Scalar, Cand, Out))
      EXPECT_EQ(serializeEquivResult(Out),
                serializeEquivResult(mkEquiv(I)));
  }
}

TEST(Store, VersionMismatchSetsStoreAsideCleanly) {
  std::string Dir = scratchDir("version");
  {
    ResultStore S(Dir);
    seed(S, 2);
  }
  // Corrupt a golden configHash inside the header: the store must be set
  // aside (not deleted, not fatal) and a usable fresh one put in place.
  std::string Bytes = readFile(logPath(Dir));
  ASSERT_GT(Bytes.size(), 32u);
  Bytes[9] = static_cast<char>(Bytes[9] ^ 0x01);
  writeFile(logPath(Dir), Bytes);
  {
    ResultStore S(Dir);
    StoreStats St = S.stats();
    EXPECT_EQ(St.VersionSkipped, 1u);
    EXPECT_EQ(St.LoadedEquiv + St.LoadedChecksum + St.LoadedPrograms, 0u);
    EXPECT_TRUE(S.ok());
    EXPECT_TRUE(fs::exists(logPath(Dir) + ".skipped"));
    // The fresh store is fully usable.
    seed(S, 1);
  }
  ResultStore S(Dir);
  EXPECT_EQ(S.stats().VersionSkipped, 0u);
  EXPECT_EQ(equivReplays(S, 1), 1);
}

//===----------------------------------------------------------------------===//
// Warm-start serving through the service layer.
//===----------------------------------------------------------------------===//

interp::ChecksumConfig fastChecksum() {
  interp::ChecksumConfig C;
  C.RunsPerN = 1;
  C.NValues = {0, 8, 32};
  C.BufferLen = 128;
  return C;
}

core::EquivConfig fastEquiv() {
  core::EquivConfig Cfg;
  Cfg.Checksum = fastChecksum();
  Cfg.ScalarMax = 4;
  Cfg.MaxTerms = 30'000;
  Cfg.Alive2Budget = 100;
  Cfg.CUnrollBudget = 200;
  Cfg.SplitBudget = 50;
  return Cfg;
}

/// Pipeline batch over a slice of the TSVC suite (every 7th test keeps
/// the three worker-count replays fast while still crossing checksum,
/// alive2, c-unroll, and splitting verdicts).
std::vector<svc::Request> sliceBatch() {
  std::vector<svc::Request> Out;
  const std::vector<tsvc::TsvcTest> &Suite = tsvc::suite();
  for (size_t I = 0; I < Suite.size(); I += 7) {
    svc::Request R;
    R.Mode = svc::RunMode::Pipeline;
    R.Name = Suite[I].Name;
    R.ScalarSource = Suite[I].Source;
    R.Fsm.MaxAttempts = 2;
    R.Fsm.Checksum = fastChecksum();
    R.Equiv = fastEquiv();
    Out.push_back(std::move(R));
  }
  return Out;
}

std::vector<std::string> runSliceAt(int Workers, const std::string &Store,
                                    svc::CacheStats *CS = nullptr,
                                    StoreStats *SS = nullptr) {
  svc::ServiceConfig SC;
  SC.Workers = Workers;
  SC.StorePath = Store;
  svc::VectorizerService S(SC);
  std::vector<svc::Ticket> Tickets = S.submitBatch(sliceBatch());
  std::vector<std::string> Out;
  Out.reserve(Tickets.size());
  for (svc::Ticket T : Tickets)
    Out.push_back(debugString(S.wait(T)));
  if (CS)
    *CS = S.cacheStats();
  if (SS && S.resultStore())
    *SS = S.resultStore()->stats();
  return Out;
}

TEST(Store, CrossProcessWarmStartIsByteIdentical) {
  std::string Dir = scratchDir("warmstart");
  // Cold reference: no store at all.
  std::vector<std::string> Cold = runSliceAt(1, "");
  ASSERT_FALSE(Cold.empty());
  // Populate the store (stands in for the writing process).
  StoreStats WriteStats;
  std::vector<std::string> Populate = runSliceAt(1, Dir, nullptr,
                                                 &WriteStats);
  EXPECT_EQ(Populate, Cold);
  EXPECT_GT(WriteStats.Writes, 0u);
  // Fresh services over the populated directory (the reading process):
  // byte-identical outcomes at every worker count, served from the store.
  for (int Workers : {1, 2, 8}) {
    svc::CacheStats CS;
    StoreStats SS;
    std::vector<std::string> Warm = runSliceAt(Workers, Dir, &CS, &SS);
    EXPECT_EQ(Warm, Cold) << "warm divergence at " << Workers
                          << " workers";
    EXPECT_GT(SS.Hits, 0u) << "warm run at " << Workers
                           << " workers never hit the store";
    EXPECT_EQ(SS.Writes, 0u);
  }
}

// A failed append mid-run (simulated disk death via the chaos file hook)
// degrades the store to memory-only: the failure is counted, later
// lookups still hit the in-memory index, and the on-disk log keeps only
// the records appended before the failure — intact and replayable.
TEST(Store, AppendFailureMidRunDegradesToMemoryOnly) {
  std::string Dir = scratchDir("chaos_append");
  int Appends = 0;
  ChaosFileHooks H;
  H.FailAppend = [&Appends] { return ++Appends > 1; };
  setChaosFileHooks(H);
  {
    ResultStore S(Dir);
    seed(S, 3); // 9 appends attempted; only the first lands on disk
    setChaosFileHooks(ChaosFileHooks());
    EXPECT_FALSE(S.ok()) << "the log must close on the first failed append";
    EXPECT_EQ(S.stats().AppendFailed, 1u)
        << "only the first failure counts; the closed log rejects the rest";
    // Memory-only service continues: every seeded entry still replays.
    core::EquivResult R;
    for (int I = 0; I < 3; ++I) {
      std::string Scalar = "scalar-" + std::to_string(I);
      std::string Cand = "cand-" + std::to_string(I);
      EXPECT_TRUE(S.lookupEquiv(hashString(Scalar.c_str()),
                                hashString(Cand.c_str()), 7, Scalar, Cand,
                                R))
          << "in-memory entry " << I << " lost after append failure";
    }
  }
  // The surviving log holds exactly the pre-failure record and reopens
  // cleanly (no torn tail, no corruption salvage).
  ResultStore Reopened(Dir);
  EXPECT_TRUE(Reopened.ok());
  EXPECT_EQ(Reopened.stats().CorruptSkipped, 0u);
  EXPECT_EQ(Reopened.stats().LoadedEquiv, 1u);
  EXPECT_EQ(Reopened.stats().LoadedChecksum, 0u);
  core::EquivResult R;
  EXPECT_TRUE(Reopened.lookupEquiv(hashString("scalar-0"),
                                   hashString("cand-0"), 7, "scalar-0",
                                   "cand-0", R));
  EXPECT_EQ(serializeEquivResult(R), serializeEquivResult(mkEquiv(0)));
}

// A read failure on open must start the store memory-only and empty
// WITHOUT touching the existing log: a transient read error clobbering a
// good log would turn a hiccup into permanent cache loss.
TEST(Store, LoadFailureLeavesLogUntouched) {
  std::string Dir = scratchDir("chaos_load");
  {
    ResultStore S(Dir);
    seed(S, 2);
  }
  std::string Before = readFile(logPath(Dir));
  ASSERT_FALSE(Before.empty());

  bool Once = true;
  ChaosFileHooks H;
  H.FailLoad = [&Once] {
    bool Fire = Once;
    Once = false;
    return Fire;
  };
  setChaosFileHooks(H);
  {
    ResultStore S(Dir);
    setChaosFileHooks(ChaosFileHooks());
    EXPECT_FALSE(S.ok());
    EXPECT_EQ(S.stats().ReadFailed, 1u);
    EXPECT_EQ(S.stats().LoadedEquiv, 0u) << "a failed load serves empty";
  }
  EXPECT_EQ(readFile(logPath(Dir)), Before)
      << "a failed load must not rewrite or set aside the log";
  // Next open (hook cleared) replays everything.
  ResultStore S2(Dir);
  EXPECT_TRUE(S2.ok());
  EXPECT_EQ(S2.stats().LoadedEquiv, 2u);
  EXPECT_EQ(S2.stats().ReadFailed, 0u);
}

} // namespace
