//===- tests/test_svc.cpp - vectorization-service tests -----------------------===//
//
// The service contract: (1) verdicts, stage attribution, and FSM
// transcripts are bit-identical at any worker count — the full TSVC suite
// runs through VectorizerService at 1, 2, and 8 workers and every
// Outcome's deterministic serialization must match byte for byte; (2) the
// content-addressed verdict cache replays identical results and never
// caches around unhashable callbacks; (3) configHash() is canonical —
// same-typed fields cannot alias, every field participates.
//
//===----------------------------------------------------------------------===//

#include "svc/Service.h"
#include "tsvc/Suite.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

using namespace lv;
using namespace lv::svc;

namespace {

/// Small checksum harness and SAT budgets keep the three full-suite runs
/// fast; the point is parity, not verification power.
interp::ChecksumConfig fastChecksum() {
  interp::ChecksumConfig C;
  C.RunsPerN = 1;
  C.NValues = {0, 8, 32};
  C.BufferLen = 128;
  return C;
}

core::EquivConfig fastEquiv() {
  core::EquivConfig Cfg;
  Cfg.Checksum = fastChecksum();
  Cfg.ScalarMax = 4;
  Cfg.MaxTerms = 30'000;
  Cfg.Alive2Budget = 100;
  Cfg.CUnrollBudget = 200;
  Cfg.SplitBudget = 50;
  return Cfg;
}

std::vector<Request> suitePipelineBatch() {
  std::vector<Request> Out;
  for (const tsvc::TsvcTest &T : tsvc::suite()) {
    Request R;
    R.Mode = RunMode::Pipeline;
    R.Name = T.Name;
    R.ScalarSource = T.Source;
    R.Fsm.MaxAttempts = 2;
    R.Fsm.Checksum = fastChecksum();
    R.Equiv = fastEquiv();
    Out.push_back(std::move(R));
  }
  return Out;
}

/// Runs the whole suite at the given worker count and serializes every
/// outcome in submission order.
std::vector<std::string> runSuiteAt(int Workers) {
  ServiceConfig SC;
  SC.Workers = Workers;
  VectorizerService S(SC);
  std::vector<Ticket> Tickets = S.submitBatch(suitePipelineBatch());
  std::vector<std::string> Out;
  Out.reserve(Tickets.size());
  for (Ticket T : Tickets)
    Out.push_back(debugString(S.wait(T)));
  return Out;
}

TEST(Service, DeterminismParityAcrossWorkerCounts) {
  std::vector<std::string> One = runSuiteAt(1);
  std::vector<std::string> Two = runSuiteAt(2);
  std::vector<std::string> Eight = runSuiteAt(8);
  ASSERT_EQ(One.size(), tsvc::suite().size());
  ASSERT_EQ(Two.size(), One.size());
  ASSERT_EQ(Eight.size(), One.size());
  for (size_t I = 0; I < One.size(); ++I) {
    EXPECT_EQ(One[I], Two[I]) << "1-vs-2 worker divergence on "
                              << tsvc::suite()[I].Name;
    EXPECT_EQ(One[I], Eight[I]) << "1-vs-8 worker divergence on "
                                << tsvc::suite()[I].Name;
  }
}

TEST(Service, BatchTicketsPreserveSubmissionOrder) {
  ServiceConfig SC;
  SC.Workers = 4;
  VectorizerService S(SC);
  std::vector<Request> Batch;
  for (int I = 0; I < 8; ++I) {
    Request R;
    R.Mode = RunMode::Verify;
    R.Name = "t" + std::to_string(I);
    R.ScalarSource =
        "void f(int n, int *a) { for (int i = 0; i < n; i++) a[i] = " +
        std::to_string(I) + "; }";
    R.CandidateSource = R.ScalarSource;
    Batch.push_back(std::move(R));
  }
  std::vector<Ticket> Tickets = S.submitBatch(std::move(Batch));
  ASSERT_EQ(Tickets.size(), 8u);
  std::vector<Outcome> Out = S.waitBatch(Tickets);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(Out[static_cast<size_t>(I)].Name, "t" + std::to_string(I));
}

TEST(Service, VerdictCacheReplaysIdenticalResults) {
  const char *Scalar =
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }";
  const char *Vec = R"(
      void f(int n, int *a, int *b) {
        __m256i one = _mm256_set1_epi32(1);
        for (int i = 0; i < n; i += 8) {
          __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
          _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
        }
      })";
  VectorizerService S; // one worker, own cache
  Request R;
  R.Mode = RunMode::Verify;
  R.ScalarSource = Scalar;
  R.CandidateSource = Vec;
  R.Equiv = fastEquiv();
  Request R2 = R;
  const Outcome &First = S.wait(S.submit(std::move(R)));
  const Outcome &Second = S.wait(S.submit(std::move(R2)));
  EXPECT_FALSE(First.VerdictCacheHit);
  EXPECT_TRUE(Second.VerdictCacheHit);
  // The replay is the stored object: identical in every field.
  EXPECT_EQ(debugString(First), debugString(Second));
  CacheStats CS = S.cacheStats();
  EXPECT_GE(CS.Hits, 1u);
  EXPECT_GE(CS.Entries, 1u);
}

TEST(Service, CacheKeyedByConfigHash) {
  const char *Scalar =
      "void f(int n, int *a) { for (int i = 0; i < n; i++) a[i] = 1; }";
  VectorizerService S;
  Request R;
  R.Mode = RunMode::Verify;
  R.ScalarSource = Scalar;
  R.CandidateSource = Scalar; // not vectorized; cheap checksum-stage work
  R.Equiv = fastEquiv();
  Request R2 = R;
  R2.Equiv.Alive2Budget += 1; // different config => different key
  (void)S.wait(S.submit(std::move(R)));
  const Outcome &Second = S.wait(S.submit(std::move(R2)));
  EXPECT_FALSE(Second.VerdictCacheHit);
}

TEST(Service, CacheBypassedForUnhashableCallbacks) {
  const char *Scalar =
      "void f(int n, int *a) { for (int i = 0; i < n; i++) a[i] = 1; }";
  VectorizerService S;
  Request R;
  R.Mode = RunMode::Verify;
  R.ScalarSource = Scalar;
  R.CandidateSource = Scalar;
  R.Equiv = fastEquiv();
  R.Equiv.IncrementalSolving = false;
  R.Equiv.SplitCellOverride = [](const vir::VFunction &S2,
                                 const vir::VFunction &T,
                                 const tv::RefineOptions &RO) {
    return tv::checkRefinement(S2, T, RO);
  };
  Request R2 = R;
  (void)S.wait(S.submit(std::move(R)));
  const Outcome &Second = S.wait(S.submit(std::move(R2)));
  EXPECT_FALSE(Second.VerdictCacheHit);
  EXPECT_GE(S.cacheStats().Bypassed, 2u);
}

//===----------------------------------------------------------------------===//
// configHash
//===----------------------------------------------------------------------===//

TEST(Service, ChecksumWorkAggregatesInterpCounters) {
  const char *Scalar =
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }";
  VectorizerService S;
  Request R;
  R.Mode = RunMode::Verify;
  R.ScalarSource = Scalar;
  R.CandidateSource = Scalar;
  R.Equiv = fastEquiv();
  const Outcome &O = S.wait(S.submit(std::move(R)));
  // Stage 1 ran: the testing-stage counters must reflect real work.
  EXPECT_EQ(O.ChecksumWork.ChecksumCalls, 1u);
  EXPECT_GT(O.ChecksumWork.InputSets, 0u);
  EXPECT_GT(O.ChecksumWork.CandRuns, 0u);
  EXPECT_GT(O.ChecksumWork.ScalarRuns, 0u);
  EXPECT_GT(O.ChecksumWork.Instrs, 0u);
  EXPECT_GT(O.ChecksumWork.Loads, 0u);
  EXPECT_GT(O.ChecksumWork.Stores, 0u);
  EXPECT_EQ(O.ChecksumWork.Traps, 0u);
}

TEST(Service, SplitCellWorkersVerdictParity) {
  // Starve stages 2-3 so the pair falls through to spatial splitting,
  // then fan the per-cell queries across 1, 2, and 8 workers. The
  // batched dispatch must be schedule-free: byte-identical outcomes
  // between the batched widths. Width 1 takes the sequential path,
  // whose fast racer searches the warm shared solver directly rather
  // than a per-cell fork, so its fast-arm statistics may legitimately
  // differ — verdict-level fields must still agree.
  const char *Scalar =
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }";
  const char *Vec = R"(
      void f(int n, int *a, int *b) {
        __m256i one = _mm256_set1_epi32(1);
        for (int i = 0; i < n; i += 8) {
          __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
          _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
        }
      })";
  auto runAt = [&](int W) {
    VectorizerService S;
    Request R;
    R.Mode = RunMode::Verify;
    R.ScalarSource = Scalar;
    R.CandidateSource = Vec;
    R.Equiv = fastEquiv();
    R.Equiv.Alive2Budget = 1;
    R.Equiv.CUnrollBudget = 1;
    R.Equiv.SplitBudget = 50'000;
    R.Equiv.SplitCellWorkers = W;
    Outcome O = S.wait(S.submit(std::move(R)));
    return O;
  };
  Outcome One = runAt(1), Two = runAt(2), Eight = runAt(8);
  ASSERT_FALSE(Two.Equiv.SplitRes.empty()) << "splitting stage must run";
  EXPECT_EQ(debugString(Two), debugString(Eight))
      << "2-vs-8 worker cell dispatch diverged";
  EXPECT_EQ(One.Equiv.Final, Two.Equiv.Final);
  EXPECT_EQ(One.Equiv.DecidedBy, Two.Equiv.DecidedBy);
  EXPECT_EQ(One.Equiv.Detail, Two.Equiv.Detail);
  EXPECT_EQ(One.Equiv.Counterexample, Two.Equiv.Counterexample);
}

TEST(ConfigHash, ChecksumFieldsDoNotAlias) {
  interp::ChecksumConfig A, B;
  // The classic reordering mistake: swapping two same-typed fields must
  // change the hash (tagged-field hashing, support/Rng.h).
  A.ValueMin = -7;
  A.ValueMax = 9;
  B.ValueMin = 9;
  B.ValueMax = -7;
  EXPECT_NE(A.configHash(), B.configHash());
  interp::ChecksumConfig C;
  EXPECT_EQ(C.configHash(), interp::ChecksumConfig().configHash());
  C.NValues.push_back(512);
  EXPECT_NE(C.configHash(), interp::ChecksumConfig().configHash());
  // The execution-engine knob participates: tree-walk and bytecode
  // outcomes must never share a cache slot.
  interp::ChecksumConfig D;
  D.UseBytecode = !D.UseBytecode;
  EXPECT_NE(D.configHash(), interp::ChecksumConfig().configHash());
}

TEST(ConfigHash, EquivFieldsDoNotAlias) {
  core::EquivConfig A, B;
  A.Alive2Budget = 111;
  A.CUnrollBudget = 222;
  B.Alive2Budget = 222;
  B.CUnrollBudget = 111;
  EXPECT_NE(A.configHash(), B.configHash());

  core::EquivConfig C, D;
  C.EnableAlive2 = false;
  D.EnableCUnroll = false;
  EXPECT_NE(C.configHash(), D.configHash());

  core::EquivConfig E;
  E.Checksum.Seed ^= 1; // nested config participates
  EXPECT_NE(E.configHash(), core::EquivConfig().configHash());

  // The query-scoped-solving booleans participate and do not alias.
  core::EquivConfig F, G;
  F.SharedLearntSolving = !F.SharedLearntSolving;
  G.ConeProjection = !G.ConeProjection;
  EXPECT_NE(F.configHash(), G.configHash());
  EXPECT_NE(F.configHash(), core::EquivConfig().configHash());
  core::EquivConfig H;
  H.TrailReuse = !H.TrailReuse;
  EXPECT_NE(H.configHash(), core::EquivConfig().configHash());
  EXPECT_NE(H.configHash(), G.configHash());

  // The portfolio knobs participate and do not alias the other booleans.
  core::EquivConfig I, J;
  I.PortfolioSolving = !I.PortfolioSolving;
  J.SplitCellWorkers = 8;
  EXPECT_NE(I.configHash(), core::EquivConfig().configHash());
  EXPECT_NE(J.configHash(), core::EquivConfig().configHash());
  EXPECT_NE(I.configHash(), J.configHash());
  EXPECT_NE(I.configHash(), H.configHash());
}

TEST(ConfigHash, FsmFieldsDoNotAlias) {
  agents::FsmConfig A;
  EXPECT_EQ(A.configHash(), agents::FsmConfig().configHash());
  A.MaxAttempts = 3;
  EXPECT_NE(A.configHash(), agents::FsmConfig().configHash());
  agents::FsmConfig B;
  B.Temperature = 0.5;
  EXPECT_NE(B.configHash(), agents::FsmConfig().configHash());
  agents::FsmConfig C;
  C.ProvideDependenceFeedback = false;
  EXPECT_NE(C.configHash(), agents::FsmConfig().configHash());
}

TEST(ConfigHash, PinnedGoldenValues) {
  // Golden pins: adding, removing, or reordering hashed fields must be a
  // conscious change — update these constants (and bump any persistent
  // cache format) when configHash legitimately changes.
  // PR 5: ChecksumConfig grew the UseBytecode engine knob (which also
  // shifts the nested hashes in EquivConfig and FsmConfig).
  // PR 7: EquivConfig grew PortfolioSolving (default true) and
  // SplitCellWorkers — portfolio verdicts must never share a cache slot
  // with the pre-portfolio default.
  EXPECT_EQ(interp::ChecksumConfig().configHash(), 0xf48e134cc157f574ULL);
  EXPECT_EQ(core::EquivConfig().configHash(), 0x9fb625218de1d1d3ULL);
  EXPECT_EQ(agents::FsmConfig().configHash(), 0x5052f9edddaa4b60ULL);
}

TEST(Service, TaskSeedDerivation) {
  EXPECT_NE(taskSeed(1, "s000"), taskSeed(1, "s111"));
  EXPECT_NE(taskSeed(1, "s000"), taskSeed(2, "s000"));
  EXPECT_EQ(taskSeed(7, "s241"), taskSeed(7, "s241"));
}

TEST(Service, PerTaskSeedDerivationDecorrelatesSameSeedRequests) {
  // A factory with no internal prompt namespacing sees only the seed the
  // service hands it; with derivation on, same-seed requests that differ
  // in name must receive different seeds.
  std::vector<uint64_t> SeenSeeds;
  ServiceConfig SC;
  SC.PerTaskSeedDerivation = true;
  SC.MakeClient = [&](uint64_t Seed) -> std::unique_ptr<llm::LLMClient> {
    SeenSeeds.push_back(Seed); // single worker: no synchronization needed
    return std::unique_ptr<llm::LLMClient>(new llm::SimulatedLLM(Seed));
  };
  VectorizerService S(SC);
  const char *Src =
      "void f(int n, int *a) { for (int i = 0; i < n; i++) a[i] = 1; }";
  Request A, B;
  A.Mode = B.Mode = RunMode::Generate;
  A.ScalarSource = B.ScalarSource = Src;
  A.Seed = B.Seed = 7;
  A.Name = "alpha";
  B.Name = "beta";
  A.Fsm.MaxAttempts = B.Fsm.MaxAttempts = 1;
  (void)S.waitBatch(S.submitBatch({std::move(A), std::move(B)}));
  ASSERT_EQ(SeenSeeds.size(), 2u);
  EXPECT_NE(SeenSeeds[0], SeenSeeds[1]);
  EXPECT_EQ(SeenSeeds[0], taskSeed(7, "alpha"));
  EXPECT_EQ(SeenSeeds[1], taskSeed(7, "beta"));
}

TEST(Service, TaskFailureIsCapturedNotFatal) {
  ServiceConfig SC;
  SC.MakeClient = [](uint64_t) -> std::unique_ptr<llm::LLMClient> {
    throw std::runtime_error("client backend unavailable");
  };
  VectorizerService S(SC);
  Request R;
  R.Mode = RunMode::Generate;
  R.Name = "doomed";
  R.ScalarSource =
      "void f(int n, int *a) { for (int i = 0; i < n; i++) a[i] = 1; }";
  const Outcome &O = S.wait(S.submit(std::move(R)));
  EXPECT_TRUE(O.Failed);
  EXPECT_NE(O.Error.find("client backend unavailable"), std::string::npos);
  // The single-call wrappers restore throwing semantics.
  Request R2;
  R2.Mode = RunMode::Generate;
  R2.ScalarSource = "void f(int n) { }";
  R2.Fsm.MaxAttempts = 1;
  EXPECT_NO_THROW(runOne(std::move(R2)));
}

} // namespace
