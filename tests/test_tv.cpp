//===- tests/test_tv.cpp - translation validation tests ----------------------===//
//
// Bounded translation validation on the paper's own kernels: correct
// vectorizations must verify Equivalent, the s453 first-attempt induction
// bug and the s124 speculative-load UB must be refuted, and budget
// exhaustion must map to Inconclusive.
//
//===----------------------------------------------------------------------===//

#include "tv/Refine.h"
#include "vir/Compile.h"

#include <gtest/gtest.h>

using namespace lv;
using namespace lv::tv;
using namespace lv::vir;

namespace {

VFunctionPtr mustCompile(const std::string &Src) {
  CompileResult R = compileFunction(Src);
  if (!R.ok())
    throw std::runtime_error("compile failed: " + R.Error);
  return std::move(R.Fn);
}

RefineOptions withDiv(const std::string &Param, int32_t Offset,
                      int32_t Mod = 8) {
  RefineOptions O;
  O.Divs.push_back(DivAssumption{Param, Offset, Mod});
  return O;
}

TEST(TV, IdenticalFunctionsAreEquivalentSyntactically) {
  const char *Src =
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] * 3 + 1; }";
  VFunctionPtr A = mustCompile(Src);
  VFunctionPtr B = mustCompile(Src);
  RefineOptions O;
  O.TgtExec = O.SrcExec; // same unroll bound => identical term DAGs
  TVResult R = checkRefinement(*A, *B, O);
  EXPECT_EQ(R.V, TVVerdict::Equivalent) << R.Detail;
  EXPECT_EQ(R.Conflicts, 0u) << "identical sides must fold syntactically";
}

TEST(TV, SimpleWidenEquivalent) {
  VFunctionPtr S = mustCompile(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }");
  VFunctionPtr V = mustCompile(R"(
    void f(int n, int *a, int *b) {
      __m256i one = _mm256_set1_epi32(1);
      for (int i = 0; i < n; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
      }
    })");
  TVResult R = checkRefinement(*S, *V, withDiv("n", 0));
  EXPECT_EQ(R.V, TVVerdict::Equivalent) << R.Detail << "\n"
                                        << R.Counterexample;
}

TEST(TV, WrongConstantRefuted) {
  VFunctionPtr S = mustCompile(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }");
  VFunctionPtr V = mustCompile(R"(
    void f(int n, int *a, int *b) {
      __m256i one = _mm256_set1_epi32(2);
      for (int i = 0; i < n; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
      }
    })");
  TVResult R = checkRefinement(*S, *V, withDiv("n", 0));
  EXPECT_EQ(R.V, TVVerdict::Inequivalent) << R.Detail;
  EXPECT_FALSE(R.Counterexample.empty());
  // The counterexample must exhibit n >= 8 (the bug needs one iteration).
  EXPECT_NE(R.Counterexample.find("n ="), std::string::npos);
}

TEST(TV, S453InductionBugRefutedAndFixVerified) {
  const char *Scalar = R"(
    void s453(int *a, int *b, int n) {
      int s = 0;
      for (int i = 0; i < n; i++) {
        s += 2;
        a[i] = s * b[i];
      }
    })";
  const char *Bad = R"(
    void s453(int *a, int *b, int n) {
      __m256i s_vec = _mm256_set1_epi32(0);
      __m256i two_vec = _mm256_set1_epi32(2);
      __m256i s_increment = _mm256_set1_epi32(16);
      int i = 0;
      for (; i <= n - 8; i += 8) {
        s_vec = _mm256_add_epi32(s_vec, two_vec);
        __m256i b_vec = _mm256_loadu_si256((__m256i*)&b[i]);
        __m256i a_vec = _mm256_mullo_epi32(s_vec, b_vec);
        _mm256_storeu_si256((__m256i*)&a[i], a_vec);
        s_vec = _mm256_add_epi32(s_vec, s_increment);
      }
    })";
  const char *Good = R"(
    void s453(int *a, int *b, int n) {
      __m256i s_vec = _mm256_setr_epi32(2, 4, 6, 8, 10, 12, 14, 16);
      __m256i two_vec = _mm256_set1_epi32(16);
      int i = 0;
      for (; i <= n - 8; i += 8) {
        __m256i b_vec = _mm256_loadu_si256((__m256i*)&b[i]);
        __m256i a_vec = _mm256_mullo_epi32(s_vec, b_vec);
        _mm256_storeu_si256((__m256i*)&a[i], a_vec);
        s_vec = _mm256_add_epi32(s_vec, two_vec);
      }
    })";
  VFunctionPtr S = mustCompile(Scalar);
  VFunctionPtr B = mustCompile(Bad);
  VFunctionPtr G = mustCompile(Good);
  TVResult RB = checkRefinement(*S, *B, withDiv("n", 0));
  EXPECT_EQ(RB.V, TVVerdict::Inequivalent) << RB.Detail;
  RefineOptions OG = withDiv("n", 0);
  OG.Budget.MaxConflicts = 400'000; // lane-ramp arithmetic needs real work
  TVResult RG = checkRefinement(*S, *G, OG);
  EXPECT_EQ(RG.V, TVVerdict::Equivalent)
      << RG.Detail << "\n" << RG.Counterexample;
}

TEST(TV, S124SpeculativeLoadRefuted) {
  // The paper's motivating example for symbolic verification (§3.1,
  // Fig. 4): checksum testing finds the blend-based candidate plausible,
  // but the unconditional load of c[] is UB on inputs where the source
  // never touches c. The counterexample needs alloc-size(c) smaller than
  // the vector footprint.
  const char *Scalar = R"(
    void s124(int *a, int *b, int *c, int *d, int *e, int n) {
      int j;
      j = -1;
      for (int i = 0; i < n; i++) {
        if (b[i] > 0) {
          j++;
          a[j] = b[i] + d[i] * e[i];
        } else {
          j++;
          a[j] = c[i] + d[i] * e[i];
        }
      }
    })";
  const char *Vec = R"(
    void s124(int *a, int *b, int *c, int *d, int *e, int n) {
      int j = 0;
      __m256i zero = _mm256_setzero_si256();
      for (int i = 0; i < n; i += 8) {
        __m256i vbi = _mm256_loadu_si256((__m256i *)&b[i]);
        __m256i vci = _mm256_loadu_si256((__m256i *)&c[i]);
        __m256i vdi = _mm256_loadu_si256((__m256i *)&d[i]);
        __m256i vei = _mm256_loadu_si256((__m256i *)&e[i]);
        __m256i vprod = _mm256_mullo_epi32(vdi, vei);
        __m256i vsum_b = _mm256_add_epi32(vbi, vprod);
        __m256i vsum_c = _mm256_add_epi32(vci, vprod);
        __m256i vmask = _mm256_cmpgt_epi32(vbi, zero);
        __m256i va = _mm256_blendv_epi8(vsum_c, vsum_b, vmask);
        _mm256_storeu_si256((__m256i *)&a[j], va);
        j += 8;
      }
    })";
  VFunctionPtr S = mustCompile(Scalar);
  VFunctionPtr V = mustCompile(Vec);
  TVResult R = checkRefinement(*S, *V, withDiv("n", 0));
  EXPECT_EQ(R.V, TVVerdict::Inequivalent) << R.Detail;
  EXPECT_NE(R.Counterexample.find("alloc-size(c)"), std::string::npos)
      << R.Counterexample;
}

TEST(TV, MaskedLoadVersionOfS124Verifies) {
  // The sound if-conversion uses maskload so only lanes whose branch is
  // taken touch c: this must verify.
  const char *Scalar = R"(
    void f(int *a, int *b, int *c, int n) {
      for (int i = 0; i < n; i++) {
        if (b[i] > 0)
          a[i] = b[i];
        else
          a[i] = c[i];
      }
    })";
  const char *Vec = R"(
    void f(int *a, int *b, int *c, int n) {
      __m256i zero = _mm256_setzero_si256();
      for (int i = 0; i < n; i += 8) {
        __m256i vb = _mm256_loadu_si256((__m256i *)&b[i]);
        __m256i vmask = _mm256_cmpgt_epi32(vb, zero);
        __m256i notmask = _mm256_cmpgt_epi32(zero, vb);
        __m256i le0 = _mm256_or_si256(notmask, _mm256_cmpeq_epi32(vb, zero));
        __m256i vc = _mm256_maskload_epi32(&c[i], le0);
        __m256i va = _mm256_blendv_epi8(vc, vb, vmask);
        _mm256_storeu_si256((__m256i *)&a[i], va);
      }
    })";
  VFunctionPtr S = mustCompile(Scalar);
  VFunctionPtr V = mustCompile(Vec);
  TVResult R = checkRefinement(*S, *V, withDiv("n", 0));
  EXPECT_EQ(R.V, TVVerdict::Equivalent)
      << R.Detail << "\n" << R.Counterexample;
}

TEST(TV, S212AtAlive2StageIsInconclusive) {
  // GPT-4's s212 (Fig. 1): loads a[i+1..i+8] before storing a[i..i+7].
  // With plain guarded unrolling (the checkWithAlive2Unroll stage) the
  // termination-check guard chains make the query too hard — faithfully
  // reproducing why the paper's Table 3 needs the C-level-unrolling stage
  // for kernels like this. The pipeline-level C-unroll test proves it
  // Equivalent (see test_pipeline.cpp); here we assert the honest outcome:
  // not refuted, and Inconclusive under a bounded budget.
  const char *Scalar = R"(
    void s212(int n, int *a, int *b, int *c, int *d) {
      for (int i = 0; i < n - 1; i++) {
        a[i] *= c[i];
        b[i] += a[i + 1] * d[i];
      }
    })";
  const char *Vec = R"(
    void s212(int n, int *a, int *b, int *c, int *d) {
      int i;
      for (i = 0; i < n - 1 - (n - 1) % 8; i += 8) {
        __m256i a_vec = _mm256_loadu_si256((__m256i *)&a[i]);
        __m256i b_vec = _mm256_loadu_si256((__m256i *)&b[i]);
        __m256i c_vec = _mm256_loadu_si256((__m256i *)&c[i]);
        __m256i a_next = _mm256_loadu_si256((__m256i *)&a[i + 1]);
        __m256i d_vec = _mm256_loadu_si256((__m256i *)&d[i]);
        __m256i prod = _mm256_mullo_epi32(a_vec, c_vec);
        _mm256_storeu_si256((__m256i *)&a[i], prod);
        prod = _mm256_mullo_epi32(a_next, d_vec);
        _mm256_storeu_si256((__m256i *)&b[i], _mm256_add_epi32(b_vec, prod));
      }
      for (; i < n - 1; i++) {
        a[i] *= c[i];
        b[i] += a[i + 1] * d[i];
      }
    })";
  VFunctionPtr S = mustCompile(Scalar);
  VFunctionPtr V = mustCompile(Vec);
  RefineOptions O = withDiv("n", -1);
  O.Budget.MaxConflicts = 5'000;
  TVResult R = checkRefinement(*S, *V, O);
  EXPECT_NE(R.V, TVVerdict::Inequivalent) << R.Counterexample;
  EXPECT_EQ(R.V, TVVerdict::Inconclusive) << R.Detail;
}

TEST(TV, ReductionVerifies) {
  VFunctionPtr S = mustCompile(
      "int vsumr(int n, int *a) { int sum = 0; "
      "for (int i = 0; i < n; i++) sum += a[i]; return sum; }");
  // Vectorized reduction with a horizontal extract-based finish.
  VFunctionPtr V = mustCompile(R"(
    int vsumr(int n, int *a) {
      __m256i acc = _mm256_setzero_si256();
      int i = 0;
      for (; i <= n - 8; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&a[i]);
        acc = _mm256_add_epi32(acc, v);
      }
      int sum = _mm256_extract_epi32(acc, 0) + _mm256_extract_epi32(acc, 1)
              + _mm256_extract_epi32(acc, 2) + _mm256_extract_epi32(acc, 3)
              + _mm256_extract_epi32(acc, 4) + _mm256_extract_epi32(acc, 5)
              + _mm256_extract_epi32(acc, 6) + _mm256_extract_epi32(acc, 7);
      for (; i < n; i++)
        sum += a[i];
      return sum;
    })");
  RefineOptions O = withDiv("n", 0);
  // Integer sums reassociate freely only with wrapping semantics; the
  // scalar source's nsw poison makes the refinement direction hold (poison
  // refines to anything). Keep the domain small so the adder equivalence
  // stays within budget.
  O.ScalarMax = 8;
  O.SrcExec.UnrollBound = 10;
  O.TgtExec.UnrollBound = 3;
  O.Budget.MaxConflicts = 400'000; // reassociated adder chains need real work
  VFunctionPtr SV = mustCompile(
      "int vsumr(int n, int *a) { int sum = 0; "
      "for (int i = 0; i < n; i++) sum += a[i]; return sum; }");
  TVResult R = checkRefinement(*SV, *V, O);
  EXPECT_EQ(R.V, TVVerdict::Equivalent)
      << R.Detail << "\n" << R.Counterexample;
  (void)S;
}

TEST(TV, TinyBudgetInconclusive) {
  // A structurally different but correct rewrite that needs real SAT work:
  // with a one-conflict budget the verdict must be Inconclusive.
  VFunctionPtr S = mustCompile(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] * 5; }");
  VFunctionPtr V = mustCompile(R"(
    void f(int n, int *a, int *b) {
      for (int i = 0; i < n; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        __m256i x4 = _mm256_slli_epi32(v, 2);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x4, v));
      }
    })");
  RefineOptions O = withDiv("n", 0);
  O.Budget.MaxConflicts = 1;
  TVResult R = checkRefinement(*S, *V, O);
  EXPECT_NE(R.V, TVVerdict::Equivalent);
  // With a real budget it verifies (x*5 == (x<<2)+x needs the SAT core,
  // since nsw poison on the source side weakens the obligation).
  RefineOptions O2 = withDiv("n", 0);
  O2.Budget.MaxConflicts = 400'000;
  TVResult R2 = checkRefinement(*S, *V, O2);
  EXPECT_EQ(R2.V, TVVerdict::Equivalent)
      << R2.Detail << "\n" << R2.Counterexample;
}

//===--------------------------------------------------------------------===//
// Portfolio racing and batched cell dispatch
//===--------------------------------------------------------------------===//

/// Field-level equality minus SolveNanos (wall time is the one field the
/// dispatch gates let vary).
void expectTvEq(const TVResult &A, const TVResult &B, const char *What) {
  EXPECT_EQ(A.V, B.V) << What;
  EXPECT_EQ(A.Detail, B.Detail) << What;
  EXPECT_EQ(A.Counterexample, B.Counterexample) << What;
  EXPECT_EQ(A.Conflicts, B.Conflicts) << What;
  EXPECT_EQ(A.Propagations, B.Propagations) << What;
  EXPECT_EQ(A.Restarts, B.Restarts) << What;
  EXPECT_EQ(A.TrailReused, B.TrailReused) << What;
  EXPECT_EQ(A.ConeVars, B.ConeVars) << What;
  EXPECT_EQ(A.ConeClauses, B.ConeClauses) << What;
  EXPECT_EQ(A.Clauses, B.Clauses) << What;
  EXPECT_EQ(A.SatVars, B.SatVars) << What;
  EXPECT_EQ(A.TermCount, B.TermCount) << What;
  EXPECT_EQ(A.PortfolioArm, B.PortfolioArm) << What;
  EXPECT_EQ(A.FastConflicts, B.FastConflicts) << What;
  EXPECT_EQ(A.FastPropagations, B.FastPropagations) << What;
  EXPECT_EQ(A.FastRestarts, B.FastRestarts) << What;
  EXPECT_EQ(A.FastTrailReused, B.FastTrailReused) << What;
}

const char *WidenScalar =
    "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
    "a[i] = b[i] * 5; }";
const char *WidenVec = R"(
    void f(int n, int *a, int *b) {
      for (int i = 0; i < n; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        __m256i x4 = _mm256_slli_epi32(v, 2);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x4, v));
      }
    })";

TEST(TV, PortfolioForcedFallbackKeepsSoundVerdict) {
  // The test hook pinches the fast racer to a zero-conflict budget, so it
  // exhausts on every query (the forced "disagreement": fast says Unknown
  // where the sound fork decides). The sound fork's verdict must always
  // win, and its share of the work must equal a plain fork session
  // bit-for-bit — the fast racer never touches the sound base.
  VFunctionPtr S1 = mustCompile(WidenScalar), V1 = mustCompile(WidenVec);
  VFunctionPtr S2 = mustCompile(WidenScalar), V2 = mustCompile(WidenVec);
  RefineOptions ForkO = withDiv("n", 0);
  ForkO.Budget.MaxConflicts = 400'000;
  RefineOptions PortO = ForkO;
  PortO.Portfolio = true;
  PortO.PortfolioFastMaxConflicts = 0;
  RefinementSession Fork(*S1, *V1, ForkO);
  RefinementSession Port(*S2, *V2, PortO);

  TVResult FF = Fork.checkFull(ForkO.Budget);
  TVResult PF = Port.checkFull(PortO.Budget);
  EXPECT_EQ(FF.V, TVVerdict::Equivalent) << FF.Detail;
  EXPECT_EQ(PF.V, FF.V) << PF.Detail;
  EXPECT_EQ(PF.Detail, FF.Detail);
  EXPECT_EQ(PF.PortfolioArm, 2) << "pinched fast arm must lose the race";
  // Headline counters total both racers; the sound share is the fork run.
  EXPECT_EQ(PF.Conflicts - PF.FastConflicts, FF.Conflicts);
  EXPECT_EQ(PF.Propagations - PF.FastPropagations, FF.Propagations);

  // The fast arm exhausted this budget class, so the adaptive gate skips
  // the race from now on: same-budget queries are pure sound forks with
  // zero fast-arm work — bit-identical to the fork session.
  TVResult FC = Fork.checkCell(0, ForkO.Budget);
  TVResult PC = Port.checkCell(0, PortO.Budget);
  EXPECT_EQ(PC.PortfolioArm, 2) << "sound arm decided (race skipped)";
  EXPECT_EQ(PC.FastConflicts, 0u) << "adaptive gate must skip the race";
  EXPECT_EQ(PC.FastPropagations, 0u);
  EXPECT_EQ(PC.V, FC.V) << PC.Detail;
  EXPECT_EQ(PC.Conflicts, FC.Conflicts);
  EXPECT_EQ(PC.Propagations, FC.Propagations);
}

TEST(TV, PortfolioFastArmDecides) {
  // An easy decidable query under a generous budget: the shared-learnt
  // cone+reuse probe decides within its slice and the sound fork never
  // runs — a fast win whose headline work is the fast arm's work alone.
  VFunctionPtr S = mustCompile(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }");
  VFunctionPtr V = mustCompile(R"(
    void f(int n, int *a, int *b) {
      __m256i one = _mm256_set1_epi32(1);
      for (int i = 0; i < n; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
      }
    })");
  RefineOptions O = withDiv("n", 0);
  O.Budget.MaxConflicts = 200'000; // probe slice = 25k, plenty for this
  O.Portfolio = true;
  RefinementSession Sess(*S, *V, O);
  TVResult R = Sess.checkFull(O.Budget);
  EXPECT_EQ(R.V, TVVerdict::Equivalent) << R.Detail;
  EXPECT_EQ(R.PortfolioArm, 1) << "fast arm should decide within the probe";
  // A fast win's work IS the fast arm's work.
  EXPECT_EQ(R.Conflicts, R.FastConflicts);
  EXPECT_EQ(R.Propagations, R.FastPropagations);
}

TEST(TV, CheckCellsBitIdenticalAcrossWorkerCounts) {
  // The batched stage-4 dispatch must be schedule-free: identical results
  // at 1, 2, and 8 workers, including the duplicate-cell replay path (the
  // trailing repeat of cell 3 must come back as a zeroed replay).
  std::vector<int> Cells = {0, 1, 2, 3, 4, 5, 6, 7, 3};
  smt::SatBudget Budget;
  Budget.MaxConflicts = 400'000;
  std::vector<std::vector<TVResult>> ByWidth;
  for (int W : {1, 2, 8}) {
    VFunctionPtr S = mustCompile(WidenScalar), V = mustCompile(WidenVec);
    RefineOptions O = withDiv("n", 0);
    O.Portfolio = true;
    RefinementSession Sess(*S, *V, O);
    ByWidth.push_back(Sess.checkCells(Cells, Budget, W));
  }
  ASSERT_EQ(ByWidth[0].size(), ByWidth[1].size());
  ASSERT_EQ(ByWidth[0].size(), ByWidth[2].size());
  for (size_t I = 0; I < ByWidth[0].size(); ++I) {
    expectTvEq(ByWidth[0][I], ByWidth[1][I], "1 vs 2 workers");
    expectTvEq(ByWidth[0][I], ByWidth[2][I], "1 vs 8 workers");
  }
  // Every cell verified; the duplicate replayed with zero solver work.
  ASSERT_EQ(ByWidth[0].size(), Cells.size());
  for (const TVResult &R : ByWidth[0])
    EXPECT_EQ(R.V, TVVerdict::Equivalent) << R.Detail;
  EXPECT_EQ(ByWidth[0].back().Conflicts, 0u) << "duplicate must replay";
}

TEST(TV, ForkModeBatchMatchesSequentialCells) {
  // With racing off, the batched dispatch must reproduce the sequential
  // checkCell loop exactly — same verdicts, same work, same memo
  // behaviour for the duplicated cell.
  std::vector<int> Cells = {0, 1, 2, 3, 2};
  smt::SatBudget Budget;
  Budget.MaxConflicts = 400'000;
  VFunctionPtr S1 = mustCompile(WidenScalar), V1 = mustCompile(WidenVec);
  VFunctionPtr S2 = mustCompile(WidenScalar), V2 = mustCompile(WidenVec);
  RefineOptions O = withDiv("n", 0);
  RefinementSession Seq(*S1, *V1, O);
  RefinementSession Batch(*S2, *V2, O);
  std::vector<TVResult> SeqR;
  for (int C : Cells)
    SeqR.push_back(Seq.checkCell(C, Budget));
  std::vector<TVResult> BatchR = Batch.checkCells(Cells, Budget, 8);
  ASSERT_EQ(BatchR.size(), SeqR.size());
  for (size_t I = 0; I < SeqR.size(); ++I)
    expectTvEq(SeqR[I], BatchR[I], "sequential vs batched fork");
}

TEST(TV, EpilogueOnlyDifferenceCaughtWithoutDivAssumption) {
  // Without the divisibility assumption the no-epilogue candidate leaves a
  // remainder unprocessed; TV must refute it. (With the assumption it
  // verifies — that is exactly the paper's "modulo" caveat.)
  VFunctionPtr S = mustCompile(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }");
  VFunctionPtr V = mustCompile(R"(
    void f(int n, int *a, int *b) {
      __m256i one = _mm256_set1_epi32(1);
      int i = 0;
      for (; i <= n - 8; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
      }
    })");
  RefineOptions NoDiv;
  TVResult R = checkRefinement(*S, *V, NoDiv);
  EXPECT_EQ(R.V, TVVerdict::Inequivalent) << R.Detail;
  TVResult R2 = checkRefinement(*S, *V, withDiv("n", 0));
  EXPECT_EQ(R2.V, TVVerdict::Equivalent)
      << R2.Detail << "\n" << R2.Counterexample;
}

} // namespace
