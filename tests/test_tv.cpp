//===- tests/test_tv.cpp - translation validation tests ----------------------===//
//
// Bounded translation validation on the paper's own kernels: correct
// vectorizations must verify Equivalent, the s453 first-attempt induction
// bug and the s124 speculative-load UB must be refuted, and budget
// exhaustion must map to Inconclusive.
//
//===----------------------------------------------------------------------===//

#include "tv/Refine.h"
#include "vir/Compile.h"

#include <gtest/gtest.h>

using namespace lv;
using namespace lv::tv;
using namespace lv::vir;

namespace {

VFunctionPtr mustCompile(const std::string &Src) {
  CompileResult R = compileFunction(Src);
  if (!R.ok())
    throw std::runtime_error("compile failed: " + R.Error);
  return std::move(R.Fn);
}

RefineOptions withDiv(const std::string &Param, int32_t Offset,
                      int32_t Mod = 8) {
  RefineOptions O;
  O.Divs.push_back(DivAssumption{Param, Offset, Mod});
  return O;
}

TEST(TV, IdenticalFunctionsAreEquivalentSyntactically) {
  const char *Src =
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] * 3 + 1; }";
  VFunctionPtr A = mustCompile(Src);
  VFunctionPtr B = mustCompile(Src);
  RefineOptions O;
  O.TgtExec = O.SrcExec; // same unroll bound => identical term DAGs
  TVResult R = checkRefinement(*A, *B, O);
  EXPECT_EQ(R.V, TVVerdict::Equivalent) << R.Detail;
  EXPECT_EQ(R.Conflicts, 0u) << "identical sides must fold syntactically";
}

TEST(TV, SimpleWidenEquivalent) {
  VFunctionPtr S = mustCompile(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }");
  VFunctionPtr V = mustCompile(R"(
    void f(int n, int *a, int *b) {
      __m256i one = _mm256_set1_epi32(1);
      for (int i = 0; i < n; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
      }
    })");
  TVResult R = checkRefinement(*S, *V, withDiv("n", 0));
  EXPECT_EQ(R.V, TVVerdict::Equivalent) << R.Detail << "\n"
                                        << R.Counterexample;
}

TEST(TV, WrongConstantRefuted) {
  VFunctionPtr S = mustCompile(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }");
  VFunctionPtr V = mustCompile(R"(
    void f(int n, int *a, int *b) {
      __m256i one = _mm256_set1_epi32(2);
      for (int i = 0; i < n; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
      }
    })");
  TVResult R = checkRefinement(*S, *V, withDiv("n", 0));
  EXPECT_EQ(R.V, TVVerdict::Inequivalent) << R.Detail;
  EXPECT_FALSE(R.Counterexample.empty());
  // The counterexample must exhibit n >= 8 (the bug needs one iteration).
  EXPECT_NE(R.Counterexample.find("n ="), std::string::npos);
}

TEST(TV, S453InductionBugRefutedAndFixVerified) {
  const char *Scalar = R"(
    void s453(int *a, int *b, int n) {
      int s = 0;
      for (int i = 0; i < n; i++) {
        s += 2;
        a[i] = s * b[i];
      }
    })";
  const char *Bad = R"(
    void s453(int *a, int *b, int n) {
      __m256i s_vec = _mm256_set1_epi32(0);
      __m256i two_vec = _mm256_set1_epi32(2);
      __m256i s_increment = _mm256_set1_epi32(16);
      int i = 0;
      for (; i <= n - 8; i += 8) {
        s_vec = _mm256_add_epi32(s_vec, two_vec);
        __m256i b_vec = _mm256_loadu_si256((__m256i*)&b[i]);
        __m256i a_vec = _mm256_mullo_epi32(s_vec, b_vec);
        _mm256_storeu_si256((__m256i*)&a[i], a_vec);
        s_vec = _mm256_add_epi32(s_vec, s_increment);
      }
    })";
  const char *Good = R"(
    void s453(int *a, int *b, int n) {
      __m256i s_vec = _mm256_setr_epi32(2, 4, 6, 8, 10, 12, 14, 16);
      __m256i two_vec = _mm256_set1_epi32(16);
      int i = 0;
      for (; i <= n - 8; i += 8) {
        __m256i b_vec = _mm256_loadu_si256((__m256i*)&b[i]);
        __m256i a_vec = _mm256_mullo_epi32(s_vec, b_vec);
        _mm256_storeu_si256((__m256i*)&a[i], a_vec);
        s_vec = _mm256_add_epi32(s_vec, two_vec);
      }
    })";
  VFunctionPtr S = mustCompile(Scalar);
  VFunctionPtr B = mustCompile(Bad);
  VFunctionPtr G = mustCompile(Good);
  TVResult RB = checkRefinement(*S, *B, withDiv("n", 0));
  EXPECT_EQ(RB.V, TVVerdict::Inequivalent) << RB.Detail;
  RefineOptions OG = withDiv("n", 0);
  OG.Budget.MaxConflicts = 400'000; // lane-ramp arithmetic needs real work
  TVResult RG = checkRefinement(*S, *G, OG);
  EXPECT_EQ(RG.V, TVVerdict::Equivalent)
      << RG.Detail << "\n" << RG.Counterexample;
}

TEST(TV, S124SpeculativeLoadRefuted) {
  // The paper's motivating example for symbolic verification (§3.1,
  // Fig. 4): checksum testing finds the blend-based candidate plausible,
  // but the unconditional load of c[] is UB on inputs where the source
  // never touches c. The counterexample needs alloc-size(c) smaller than
  // the vector footprint.
  const char *Scalar = R"(
    void s124(int *a, int *b, int *c, int *d, int *e, int n) {
      int j;
      j = -1;
      for (int i = 0; i < n; i++) {
        if (b[i] > 0) {
          j++;
          a[j] = b[i] + d[i] * e[i];
        } else {
          j++;
          a[j] = c[i] + d[i] * e[i];
        }
      }
    })";
  const char *Vec = R"(
    void s124(int *a, int *b, int *c, int *d, int *e, int n) {
      int j = 0;
      __m256i zero = _mm256_setzero_si256();
      for (int i = 0; i < n; i += 8) {
        __m256i vbi = _mm256_loadu_si256((__m256i *)&b[i]);
        __m256i vci = _mm256_loadu_si256((__m256i *)&c[i]);
        __m256i vdi = _mm256_loadu_si256((__m256i *)&d[i]);
        __m256i vei = _mm256_loadu_si256((__m256i *)&e[i]);
        __m256i vprod = _mm256_mullo_epi32(vdi, vei);
        __m256i vsum_b = _mm256_add_epi32(vbi, vprod);
        __m256i vsum_c = _mm256_add_epi32(vci, vprod);
        __m256i vmask = _mm256_cmpgt_epi32(vbi, zero);
        __m256i va = _mm256_blendv_epi8(vsum_c, vsum_b, vmask);
        _mm256_storeu_si256((__m256i *)&a[j], va);
        j += 8;
      }
    })";
  VFunctionPtr S = mustCompile(Scalar);
  VFunctionPtr V = mustCompile(Vec);
  TVResult R = checkRefinement(*S, *V, withDiv("n", 0));
  EXPECT_EQ(R.V, TVVerdict::Inequivalent) << R.Detail;
  EXPECT_NE(R.Counterexample.find("alloc-size(c)"), std::string::npos)
      << R.Counterexample;
}

TEST(TV, MaskedLoadVersionOfS124Verifies) {
  // The sound if-conversion uses maskload so only lanes whose branch is
  // taken touch c: this must verify.
  const char *Scalar = R"(
    void f(int *a, int *b, int *c, int n) {
      for (int i = 0; i < n; i++) {
        if (b[i] > 0)
          a[i] = b[i];
        else
          a[i] = c[i];
      }
    })";
  const char *Vec = R"(
    void f(int *a, int *b, int *c, int n) {
      __m256i zero = _mm256_setzero_si256();
      for (int i = 0; i < n; i += 8) {
        __m256i vb = _mm256_loadu_si256((__m256i *)&b[i]);
        __m256i vmask = _mm256_cmpgt_epi32(vb, zero);
        __m256i notmask = _mm256_cmpgt_epi32(zero, vb);
        __m256i le0 = _mm256_or_si256(notmask, _mm256_cmpeq_epi32(vb, zero));
        __m256i vc = _mm256_maskload_epi32(&c[i], le0);
        __m256i va = _mm256_blendv_epi8(vc, vb, vmask);
        _mm256_storeu_si256((__m256i *)&a[i], va);
      }
    })";
  VFunctionPtr S = mustCompile(Scalar);
  VFunctionPtr V = mustCompile(Vec);
  TVResult R = checkRefinement(*S, *V, withDiv("n", 0));
  EXPECT_EQ(R.V, TVVerdict::Equivalent)
      << R.Detail << "\n" << R.Counterexample;
}

TEST(TV, S212AtAlive2StageIsInconclusive) {
  // GPT-4's s212 (Fig. 1): loads a[i+1..i+8] before storing a[i..i+7].
  // With plain guarded unrolling (the checkWithAlive2Unroll stage) the
  // termination-check guard chains make the query too hard — faithfully
  // reproducing why the paper's Table 3 needs the C-level-unrolling stage
  // for kernels like this. The pipeline-level C-unroll test proves it
  // Equivalent (see test_pipeline.cpp); here we assert the honest outcome:
  // not refuted, and Inconclusive under a bounded budget.
  const char *Scalar = R"(
    void s212(int n, int *a, int *b, int *c, int *d) {
      for (int i = 0; i < n - 1; i++) {
        a[i] *= c[i];
        b[i] += a[i + 1] * d[i];
      }
    })";
  const char *Vec = R"(
    void s212(int n, int *a, int *b, int *c, int *d) {
      int i;
      for (i = 0; i < n - 1 - (n - 1) % 8; i += 8) {
        __m256i a_vec = _mm256_loadu_si256((__m256i *)&a[i]);
        __m256i b_vec = _mm256_loadu_si256((__m256i *)&b[i]);
        __m256i c_vec = _mm256_loadu_si256((__m256i *)&c[i]);
        __m256i a_next = _mm256_loadu_si256((__m256i *)&a[i + 1]);
        __m256i d_vec = _mm256_loadu_si256((__m256i *)&d[i]);
        __m256i prod = _mm256_mullo_epi32(a_vec, c_vec);
        _mm256_storeu_si256((__m256i *)&a[i], prod);
        prod = _mm256_mullo_epi32(a_next, d_vec);
        _mm256_storeu_si256((__m256i *)&b[i], _mm256_add_epi32(b_vec, prod));
      }
      for (; i < n - 1; i++) {
        a[i] *= c[i];
        b[i] += a[i + 1] * d[i];
      }
    })";
  VFunctionPtr S = mustCompile(Scalar);
  VFunctionPtr V = mustCompile(Vec);
  RefineOptions O = withDiv("n", -1);
  O.Budget.MaxConflicts = 5'000;
  TVResult R = checkRefinement(*S, *V, O);
  EXPECT_NE(R.V, TVVerdict::Inequivalent) << R.Counterexample;
  EXPECT_EQ(R.V, TVVerdict::Inconclusive) << R.Detail;
}

TEST(TV, ReductionVerifies) {
  VFunctionPtr S = mustCompile(
      "int vsumr(int n, int *a) { int sum = 0; "
      "for (int i = 0; i < n; i++) sum += a[i]; return sum; }");
  // Vectorized reduction with a horizontal extract-based finish.
  VFunctionPtr V = mustCompile(R"(
    int vsumr(int n, int *a) {
      __m256i acc = _mm256_setzero_si256();
      int i = 0;
      for (; i <= n - 8; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&a[i]);
        acc = _mm256_add_epi32(acc, v);
      }
      int sum = _mm256_extract_epi32(acc, 0) + _mm256_extract_epi32(acc, 1)
              + _mm256_extract_epi32(acc, 2) + _mm256_extract_epi32(acc, 3)
              + _mm256_extract_epi32(acc, 4) + _mm256_extract_epi32(acc, 5)
              + _mm256_extract_epi32(acc, 6) + _mm256_extract_epi32(acc, 7);
      for (; i < n; i++)
        sum += a[i];
      return sum;
    })");
  RefineOptions O = withDiv("n", 0);
  // Integer sums reassociate freely only with wrapping semantics; the
  // scalar source's nsw poison makes the refinement direction hold (poison
  // refines to anything). Keep the domain small so the adder equivalence
  // stays within budget.
  O.ScalarMax = 8;
  O.SrcExec.UnrollBound = 10;
  O.TgtExec.UnrollBound = 3;
  O.Budget.MaxConflicts = 400'000; // reassociated adder chains need real work
  VFunctionPtr SV = mustCompile(
      "int vsumr(int n, int *a) { int sum = 0; "
      "for (int i = 0; i < n; i++) sum += a[i]; return sum; }");
  TVResult R = checkRefinement(*SV, *V, O);
  EXPECT_EQ(R.V, TVVerdict::Equivalent)
      << R.Detail << "\n" << R.Counterexample;
  (void)S;
}

TEST(TV, TinyBudgetInconclusive) {
  // A structurally different but correct rewrite that needs real SAT work:
  // with a one-conflict budget the verdict must be Inconclusive.
  VFunctionPtr S = mustCompile(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] * 5; }");
  VFunctionPtr V = mustCompile(R"(
    void f(int n, int *a, int *b) {
      for (int i = 0; i < n; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        __m256i x4 = _mm256_slli_epi32(v, 2);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(x4, v));
      }
    })");
  RefineOptions O = withDiv("n", 0);
  O.Budget.MaxConflicts = 1;
  TVResult R = checkRefinement(*S, *V, O);
  EXPECT_NE(R.V, TVVerdict::Equivalent);
  // With a real budget it verifies (x*5 == (x<<2)+x needs the SAT core,
  // since nsw poison on the source side weakens the obligation).
  RefineOptions O2 = withDiv("n", 0);
  O2.Budget.MaxConflicts = 400'000;
  TVResult R2 = checkRefinement(*S, *V, O2);
  EXPECT_EQ(R2.V, TVVerdict::Equivalent)
      << R2.Detail << "\n" << R2.Counterexample;
}

TEST(TV, EpilogueOnlyDifferenceCaughtWithoutDivAssumption) {
  // Without the divisibility assumption the no-epilogue candidate leaves a
  // remainder unprocessed; TV must refute it. (With the assumption it
  // verifies — that is exactly the paper's "modulo" caveat.)
  VFunctionPtr S = mustCompile(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }");
  VFunctionPtr V = mustCompile(R"(
    void f(int n, int *a, int *b) {
      __m256i one = _mm256_set1_epi32(1);
      int i = 0;
      for (; i <= n - 8; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
      }
    })");
  RefineOptions NoDiv;
  TVResult R = checkRefinement(*S, *V, NoDiv);
  EXPECT_EQ(R.V, TVVerdict::Inequivalent) << R.Detail;
  TVResult R2 = checkRefinement(*S, *V, withDiv("n", 0));
  EXPECT_EQ(R2.V, TVVerdict::Equivalent)
      << R2.Detail << "\n" << R2.Counterexample;
}

} // namespace
