//===- tests/test_vir_interp.cpp - lowering + interpreter tests ------------===//
//
// Validates AST->VIR lowering and the concrete interpreter against directly
// computed expectations, including the paper's motivating kernels, AVX2
// intrinsic semantics, goto restructuring, and the checksum harness.
//
//===----------------------------------------------------------------------===//

#include "interp/Checksum.h"
#include "interp/Interp.h"
#include "vir/Compile.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace lv;
using namespace lv::interp;
using namespace lv::vir;

namespace {

/// Compiles or fails the test with the frontend diagnostic.
static VFunctionPtr mustCompile(const std::string &Src) {
  CompileResult R = compileFunction(Src);
  if (!R.ok())
    throw std::runtime_error("compile failed: " + R.Error);
  return std::move(R.Fn);
}

/// Runs a function whose params are (int n, int *bufs...) over the given
/// buffers; returns the result and mutates the buffers in place.
static ExecResult runOn(const VFunction &F, std::vector<int32_t> Args,
                        std::vector<std::vector<int32_t>> &Bufs) {
  MemoryImage M;
  for (auto &B : Bufs)
    M.Regions.push_back(B);
  // Local regions follow; the interpreter appends them as needed.
  ExecResult R = execute(F, Args, M);
  for (size_t I = 0; I < Bufs.size(); ++I)
    Bufs[I] = M.Regions[I];
  return R;
}

TEST(Lower, SimpleLoopStructure) {
  VFunctionPtr F = mustCompile(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }");
  ASSERT_EQ(F->Memories.size(), 2u);
  EXPECT_EQ(F->Memories[0].Name, "a");
  EXPECT_TRUE(F->Memories[0].IsParam);
  std::string Dump = printFunction(*F);
  EXPECT_NE(Dump.find("for {"), std::string::npos);
  EXPECT_NE(Dump.find("load @b"), std::string::npos);
  EXPECT_NE(Dump.find("store @a"), std::string::npos);
}

TEST(Lower, RejectsPointerReassignment) {
  CompileResult R = compileFunction(
      "void f(int *a, int *b) { int *p = a; p = b; p[0] = 1; }");
  EXPECT_FALSE(R.ok());
  EXPECT_EQ(R.FailedAt, CompileResult::LowerError);
}

TEST(Lower, VectorIntrinsicsLower) {
  VFunctionPtr F = mustCompile(R"(
    void f(int n, int *a, int *b) {
      for (int i = 0; i < n; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        __m256i one = _mm256_set1_epi32(1);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
      }
    })");
  std::string Dump = printFunction(*F);
  EXPECT_NE(Dump.find("vload @b"), std::string::npos);
  EXPECT_NE(Dump.find("vbroadcast"), std::string::npos);
  EXPECT_NE(Dump.find("vadd"), std::string::npos);
  EXPECT_NE(Dump.find("vstore @a"), std::string::npos);
}

TEST(Interp, ScalarLoopComputes) {
  VFunctionPtr F = mustCompile(
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] * 2 + 1; }");
  std::vector<std::vector<int32_t>> Bufs = {std::vector<int32_t>(16, 0),
                                            std::vector<int32_t>(16, 0)};
  std::iota(Bufs[1].begin(), Bufs[1].end(), 0);
  ExecResult R = runOn(*F, {8}, Bufs);
  ASSERT_TRUE(R.ok()) << R.TrapMsg;
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(Bufs[0][static_cast<size_t>(I)], I * 2 + 1);
  EXPECT_EQ(Bufs[0][8], 0) << "must not write beyond n";
}

TEST(Interp, VectorAndScalarAgreeOnS212) {
  const char *ScalarSrc = R"(
    void s212(int n, int *a, int *b, int *c, int *d) {
      for (int i = 0; i < n - 1; i++) {
        a[i] *= c[i];
        b[i] += a[i + 1] * d[i];
      }
    })";
  const char *VecSrc = R"(
    void s212(int n, int *a, int *b, int *c, int *d) {
      int i;
      for (i = 0; i < n - 1 - (n - 1) % 8; i += 8) {
        __m256i a_vec = _mm256_loadu_si256((__m256i *)&a[i]);
        __m256i b_vec = _mm256_loadu_si256((__m256i *)&b[i]);
        __m256i c_vec = _mm256_loadu_si256((__m256i *)&c[i]);
        __m256i a_next = _mm256_loadu_si256((__m256i *)&a[i + 1]);
        __m256i d_vec = _mm256_loadu_si256((__m256i *)&d[i]);
        __m256i prod = _mm256_mullo_epi32(a_vec, c_vec);
        _mm256_storeu_si256((__m256i *)&a[i], prod);
        prod = _mm256_mullo_epi32(a_next, d_vec);
        _mm256_storeu_si256((__m256i *)&b[i], _mm256_add_epi32(b_vec, prod));
      }
      for (; i < n - 1; i++) {
        a[i] *= c[i];
        b[i] += a[i + 1] * d[i];
      }
    })";
  VFunctionPtr S = mustCompile(ScalarSrc);
  VFunctionPtr V = mustCompile(VecSrc);
  ChecksumOutcome O = runChecksumTest(*S, *V);
  EXPECT_EQ(O.Verdict, TestVerdict::Plausible) << O.Detail;
}

TEST(Interp, ChecksumCatchesWrongInduction) {
  // The paper's s453 first attempt: s_vec starts at 2 broadcast, which is
  // wrong (must be 2,4,6,...,16).
  const char *ScalarSrc = R"(
    void s453(int *a, int *b, int n) {
      int s = 0;
      for (int i = 0; i < n; i++) {
        s += 2;
        a[i] = s * b[i];
      }
    })";
  const char *BadVec = R"(
    void s453(int *a, int *b, int n) {
      __m256i s_vec = _mm256_set1_epi32(0);
      __m256i two_vec = _mm256_set1_epi32(2);
      __m256i s_increment = _mm256_set1_epi32(16);
      int i = 0;
      for (; i <= n - 8; i += 8) {
        s_vec = _mm256_add_epi32(s_vec, two_vec);
        __m256i b_vec = _mm256_loadu_si256((__m256i*)&b[i]);
        __m256i a_vec = _mm256_mullo_epi32(s_vec, b_vec);
        _mm256_storeu_si256((__m256i*)&a[i], a_vec);
        s_vec = _mm256_add_epi32(s_vec, s_increment);
      }
    })";
  const char *GoodVec = R"(
    void s453(int *a, int *b, int n) {
      __m256i s_vec = _mm256_setr_epi32(2, 4, 6, 8, 10, 12, 14, 16);
      __m256i two_vec = _mm256_set1_epi32(16);
      int i = 0;
      for (; i <= n - 8; i += 8) {
        __m256i b_vec = _mm256_loadu_si256((__m256i*)&b[i]);
        __m256i a_vec = _mm256_mullo_epi32(s_vec, b_vec);
        _mm256_storeu_si256((__m256i*)&a[i], a_vec);
        s_vec = _mm256_add_epi32(s_vec, two_vec);
      }
    })";
  VFunctionPtr S = mustCompile(ScalarSrc);
  VFunctionPtr Bad = mustCompile(BadVec);
  VFunctionPtr Good = mustCompile(GoodVec);
  ChecksumOutcome BadO = runChecksumTest(*S, *Bad);
  EXPECT_EQ(BadO.Verdict, TestVerdict::NotEquivalent);
  EXPECT_FALSE(BadO.Detail.empty());
  ChecksumOutcome GoodO = runChecksumTest(*S, *Good);
  EXPECT_EQ(GoodO.Verdict, TestVerdict::Plausible) << GoodO.Detail;
}

TEST(Interp, ChecksumMissesSpeculativeLoadUB) {
  // s124-style: the blend-based candidate loads c[] unconditionally. With
  // big concrete buffers nothing faults, so checksum testing must find it
  // Plausible (the paper's motivating blind spot).
  const char *ScalarSrc = R"(
    void s124(int *a, int *b, int *c, int *d, int *e, int n) {
      int j;
      j = -1;
      for (int i = 0; i < n; i++) {
        if (b[i] > 0) {
          j++;
          a[j] = b[i] + d[i] * e[i];
        } else {
          j++;
          a[j] = c[i] + d[i] * e[i];
        }
      }
    })";
  const char *VecSrc = R"(
    void s124(int *a, int *b, int *c, int *d, int *e, int n) {
      int j = 0;
      __m256i zero = _mm256_setzero_si256();
      for (int i = 0; i < n; i += 8) {
        __m256i vbi = _mm256_loadu_si256((__m256i *)&b[i]);
        __m256i vci = _mm256_loadu_si256((__m256i *)&c[i]);
        __m256i vdi = _mm256_loadu_si256((__m256i *)&d[i]);
        __m256i vei = _mm256_loadu_si256((__m256i *)&e[i]);
        __m256i vprod = _mm256_mullo_epi32(vdi, vei);
        __m256i vsum_b = _mm256_add_epi32(vbi, vprod);
        __m256i vsum_c = _mm256_add_epi32(vci, vprod);
        __m256i vmask = _mm256_cmpgt_epi32(vbi, zero);
        __m256i va = _mm256_blendv_epi8(vsum_c, vsum_b, vmask);
        _mm256_storeu_si256((__m256i *)&a[j], va);
        j += 8;
      }
    })";
  VFunctionPtr S = mustCompile(ScalarSrc);
  VFunctionPtr V = mustCompile(VecSrc);
  ChecksumOutcome O = runChecksumTest(*S, *V);
  EXPECT_EQ(O.Verdict, TestVerdict::Plausible) << O.Detail;
}

TEST(Interp, GotoKernelExecutes) {
  const char *Src = R"(
    void s278(int n, int *a, int *b, int *c, int *d, int *e) {
      for (int i = 0; i < n; i++) {
        if (a[i] > 0) {
          goto L20;
        }
        b[i] = -b[i] + d[i] * e[i];
        goto L30;
L20:
        c[i] = -c[i] + d[i] * e[i];
L30:
        a[i] = b[i] + c[i] * d[i];
      }
    })";
  VFunctionPtr F = mustCompile(Src);
  std::vector<std::vector<int32_t>> Bufs(5, std::vector<int32_t>(8, 0));
  // a = [1,-1,...], b=2, c=3, d=4, e=5.
  for (size_t I = 0; I < 8; ++I) {
    Bufs[0][I] = (I % 2 == 0) ? 1 : -1;
    Bufs[1][I] = 2;
    Bufs[2][I] = 3;
    Bufs[3][I] = 4;
    Bufs[4][I] = 5;
  }
  ExecResult R = runOn(*F, {8}, Bufs);
  ASSERT_TRUE(R.ok()) << R.TrapMsg;
  // a[i] > 0: c = -3 + 20 = 17; a = 2 + 17*4 = 70.
  // a[i] <= 0: b = -2 + 20 = 18; a = 18 + 3*4 = 30.
  EXPECT_EQ(Bufs[0][0], 70);
  EXPECT_EQ(Bufs[0][1], 30);
  EXPECT_EQ(Bufs[2][0], 17);
  EXPECT_EQ(Bufs[1][1], 18);
}

TEST(Interp, ReductionReturnsValue) {
  VFunctionPtr F = mustCompile(
      "int vsumr(int n, int *a) { int sum = 0; "
      "for (int i = 0; i < n; i++) sum += a[i]; return sum; }");
  std::vector<std::vector<int32_t>> Bufs = {std::vector<int32_t>(16, 3)};
  ExecResult R = runOn(*F, {10}, Bufs);
  ASSERT_TRUE(R.ok());
  EXPECT_TRUE(R.Returned);
  EXPECT_EQ(R.RetVal, 30);
}

TEST(Interp, BreakAndContinue) {
  VFunctionPtr F = mustCompile(R"(
    int f(int n, int *a) {
      int cnt = 0;
      for (int i = 0; i < n; i++) {
        if (a[i] < 0)
          continue;
        if (a[i] == 99)
          break;
        cnt++;
      }
      return cnt;
    })");
  std::vector<std::vector<int32_t>> Bufs = {
      {5, -1, 7, 99, 4, 4, 4, 4, 4, 4}};
  ExecResult R = runOn(*F, {10}, Bufs);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.RetVal, 2);
}

TEST(Interp, DivByZeroTraps) {
  VFunctionPtr F = mustCompile("int f(int n) { return 10 / n; }");
  std::vector<std::vector<int32_t>> Bufs;
  ExecResult R = runOn(*F, {0}, Bufs);
  EXPECT_EQ(R.St, ExecResult::Trap);
  EXPECT_NE(R.TrapMsg.find("division by zero"), std::string::npos);
}

TEST(Interp, OutOfBoundsTraps) {
  VFunctionPtr F = mustCompile("void f(int n, int *a) { a[n] = 1; }");
  std::vector<std::vector<int32_t>> Bufs = {std::vector<int32_t>(4, 0)};
  ExecResult R = runOn(*F, {100}, Bufs);
  EXPECT_EQ(R.St, ExecResult::Trap);
}

TEST(Interp, InfiniteLoopRunsOutOfFuel) {
  CompileResult C = compileFunction("void f(int n) { for (;;) { n = n; } }");
  ASSERT_TRUE(C.ok()) << C.Error;
  MemoryImage M;
  ExecConfig Cfg;
  Cfg.MaxSteps = 10'000;
  ExecResult R = execute(*C.Fn, {1}, M, Cfg);
  EXPECT_EQ(R.St, ExecResult::OutOfFuel);
}

TEST(Interp, BlendvBytewiseSemantics) {
  // Mask lane 0x0000FF80 has MSBs set in bytes 1 (0xFF) only for byte 1
  // (bit 15) => result mixes bytes from both sources.
  VFunctionPtr F = mustCompile(R"(
    void f(int *a) {
      __m256i x = _mm256_set1_epi32(0x11111111);
      __m256i y = _mm256_set1_epi32(0x22222222);
      __m256i m = _mm256_set1_epi32(0x0000FF80);
      __m256i r = _mm256_blendv_epi8(x, y, m);
      _mm256_storeu_si256((__m256i *)&a[0], r);
    })");
  std::vector<std::vector<int32_t>> Bufs = {std::vector<int32_t>(8, 0)};
  ExecResult R = runOn(*F, {}, Bufs);
  ASSERT_TRUE(R.ok()) << R.TrapMsg;
  // Byte0: mask 0x80 MSB=1 -> y; byte1: 0xFF -> y; bytes 2,3 -> x.
  EXPECT_EQ(static_cast<uint32_t>(Bufs[0][0]), 0x11112222u);
}

TEST(Interp, MaskLoadSkipsInactiveLanes) {
  // Mask only lane 0 active; region has just 1 element: must not trap.
  VFunctionPtr F = mustCompile(R"(
    void f(int *a, int *b) {
      __m256i m = _mm256_setr_epi32(-1, 0, 0, 0, 0, 0, 0, 0);
      __m256i v = _mm256_maskload_epi32(&b[0], m);
      _mm256_maskstore_epi32(&a[0], m, v);
    })");
  std::vector<std::vector<int32_t>> Bufs = {std::vector<int32_t>(1, 0),
                                            std::vector<int32_t>(1, 42)};
  ExecResult R = runOn(*F, {}, Bufs);
  ASSERT_TRUE(R.ok()) << R.TrapMsg;
  EXPECT_EQ(Bufs[0][0], 42);
}

TEST(Interp, HAddInterleaves) {
  VFunctionPtr F = mustCompile(R"(
    void f(int *a) {
      __m256i x = _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 8);
      __m256i y = _mm256_setr_epi32(10, 20, 30, 40, 50, 60, 70, 80);
      _mm256_storeu_si256((__m256i *)&a[0], _mm256_hadd_epi32(x, y));
    })");
  std::vector<std::vector<int32_t>> Bufs = {std::vector<int32_t>(8, 0)};
  ExecResult R = runOn(*F, {}, Bufs);
  ASSERT_TRUE(R.ok()) << R.TrapMsg;
  std::vector<int32_t> Want = {3, 7, 30, 70, 11, 15, 110, 150};
  EXPECT_EQ(Bufs[0], Want);
}

TEST(Interp, CostModelFavorsVectorCode) {
  const char *ScalarSrc =
      "void f(int n, int *a, int *b) { for (int i = 0; i < n; i++) "
      "a[i] = b[i] + 1; }";
  const char *VecSrc = R"(
    void f(int n, int *a, int *b) {
      __m256i one = _mm256_set1_epi32(1);
      for (int i = 0; i < n; i += 8) {
        __m256i v = _mm256_loadu_si256((__m256i *)&b[i]);
        _mm256_storeu_si256((__m256i *)&a[i], _mm256_add_epi32(v, one));
      }
    })";
  VFunctionPtr S = mustCompile(ScalarSrc);
  VFunctionPtr V = mustCompile(VecSrc);
  CostModel CM;
  ExecConfig Cfg;
  Cfg.Costs = &CM;
  const int N = 1024;
  MemoryImage MS, MV;
  MS.Regions = {std::vector<int32_t>(N + 8, 0),
                std::vector<int32_t>(N + 8, 7)};
  MV.Regions = MS.Regions;
  ExecResult RS = execute(*S, {N}, MS, Cfg);
  ExecResult RV = execute(*V, {N}, MV, Cfg);
  ASSERT_TRUE(RS.ok());
  ASSERT_TRUE(RV.ok());
  double Speedup = RS.Cycles / RV.Cycles;
  EXPECT_GT(Speedup, 3.0) << "vector code should be much faster";
  EXPECT_LT(Speedup, 10.0) << "speedup must stay below the lane count + "
                              "overhead headroom";
  EXPECT_EQ(MS.Regions[0], MV.Regions[0]);
}

} // namespace
